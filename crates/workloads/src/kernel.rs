//! Parameterized instruction kernels — the building blocks of the
//! synthetic benchmark suite.
//!
//! Register conventions (shared with [`bench`](crate::bench)):
//!
//! * `r1`–`r9`, `f1`–`f9` — kernel-local scratch, reset per invocation
//! * `r10`/`r11` — outer iteration counter / limit
//! * `r12`/`r13` — phase-dispatch scratch
//! * `r28` — persistent pointer-chase cursor
//! * `r29` — persistent LCG state (shared pseudo-randomness)
//! * `r30`/`r31` — stack pointer / link register

use spectral_isa::{Label, ProgramBuilder, Reg};

/// How predictable a kernel's data-dependent branches are.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Predictability {
    /// Branch taken ~1 time in 8 (easily learned bias).
    Biased,
    /// Branch decided by an LCG bit (~50% taken, hard to predict).
    Random,
}

/// A parameterized instruction kernel. One invocation of a kernel is the
/// body of one outer-loop iteration of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Sequential read-sum over `words` 64-bit words: high spatial
    /// locality, streaming reuse pattern.
    StreamSum {
        /// Array length in words.
        words: u64,
    },
    /// Strided walk over a power-of-two array: defeats L1 when the
    /// stride exceeds a line, exercises L2.
    StrideWalk {
        /// Array length in words (power of two).
        words: u64,
        /// Stride in words.
        stride: u64,
        /// Accesses per invocation.
        count: u64,
    },
    /// Pointer chasing around a shuffled cycle of `nodes` nodes:
    /// serialized, cache-miss-bound (mcf-style).
    PointerChase {
        /// Cycle length; footprint is `nodes * 8` bytes.
        nodes: u64,
        /// Hops per invocation.
        hops: u64,
    },
    /// LCG-indexed loads/stores over a power-of-two array: poor locality
    /// with an unpredictable load/store branch.
    RandomAccess {
        /// Array length in words (power of two).
        words: u64,
        /// Accesses per invocation.
        count: u64,
    },
    /// Data-dependent branch storms with bookkeeping ALU work
    /// (gcc/crafty-style control flow).
    Branchy {
        /// Branch pairs per invocation.
        count: u64,
        /// Direction entropy.
        predictability: Predictability,
    },
    /// Naive `n×n` FP matrix multiply (one full pass per invocation):
    /// FP-pipeline pressure with blocked reuse.
    MatmulBlocked {
        /// Matrix dimension.
        n: u64,
    },
    /// One smoothing sweep of a 3-point FP stencil over `words` elements
    /// (swim/mgrid-style streaming FP).
    Stencil {
        /// Array length in words.
        words: u64,
    },
    /// Hashed read-modify-write over a power-of-two table
    /// (store-buffer and MSHR pressure).
    HashWrite {
        /// Table length in words (power of two).
        slots: u64,
        /// Updates per invocation.
        count: u64,
    },
    /// Call/return chains through two shared leaf functions
    /// (RAS and call-overhead pressure, perlbmk/eon-style).
    CallChain {
        /// Calls per invocation.
        calls: u64,
    },
    /// Serialized integer divide chain: long-latency, ILP-free stretches
    /// (worst-case scheduling pressure).
    DivChain {
        /// Divides per invocation.
        count: u64,
    },
}

impl Kernel {
    /// Approximate committed instructions per invocation (used to pick
    /// outer iteration counts for a target benchmark length).
    pub fn approx_dyn_len(&self) -> u64 {
        match *self {
            Kernel::StreamSum { words } => 5 * words + 4,
            Kernel::StrideWalk { count, .. } => 8 * count + 5,
            Kernel::PointerChase { hops, .. } => 3 * hops + 2,
            Kernel::RandomAccess { count, .. } => 11 * count + 4,
            Kernel::Branchy { count, .. } => 9 * count + 4,
            Kernel::MatmulBlocked { n } => 10 * n * n * n + 8 * n * n + 4,
            Kernel::Stencil { words } => 10 * words.saturating_sub(2) + 6,
            Kernel::HashWrite { count, .. } => 10 * count + 4,
            Kernel::CallChain { calls } => 12 * calls + 3,
            Kernel::DivChain { count } => 3 * count + 3,
        }
    }

    /// Data-segment words this kernel needs.
    pub fn data_words(&self) -> u64 {
        match *self {
            Kernel::StreamSum { words } => words,
            Kernel::StrideWalk { words, .. } => words,
            Kernel::PointerChase { nodes, .. } => nodes,
            Kernel::RandomAccess { words, .. } => words,
            Kernel::Branchy { .. } => 0,
            Kernel::MatmulBlocked { n } => 3 * n * n,
            Kernel::Stencil { words } => 2 * words,
            Kernel::HashWrite { slots, .. } => slots,
            Kernel::CallChain { .. } => 0,
            Kernel::DivChain { .. } => 0,
        }
    }
}

/// Shared context handed to kernel emitters: allocated data bases and
/// shared function labels.
#[derive(Debug, Clone, Copy)]
pub struct EmitCtx {
    /// Base address of this kernel instance's data area (0 if none).
    pub base: u64,
    /// Label of shared leaf function `f` (calls `g`).
    pub fn_f: Label,
}

/// Emit the two shared leaf functions used by [`Kernel::CallChain`];
/// returns the label of `f`. Must be emitted in a spot control flow
/// jumps over (the benchmark builder places them before `main`).
pub fn emit_call_targets(b: &mut ProgramBuilder) -> Label {
    let fn_f = b.new_label();
    let fn_g = b.new_label();
    // f: save link, a little work, call g, restore link, return.
    b.bind(fn_f);
    b.addi(Reg::R27, Reg::R31, 0);
    b.addi(Reg::R4, Reg::R4, 3);
    b.xori(Reg::R5, Reg::R4, 0x55);
    b.call(Reg::R31, fn_g);
    b.addi(Reg::R31, Reg::R27, 0);
    b.jump_reg(Reg::R31);
    // g: leaf.
    b.bind(fn_g);
    b.addi(Reg::R6, Reg::R6, 1);
    b.shli(Reg::R7, Reg::R6, 2);
    b.jump_reg(Reg::R31);
    fn_f
}

/// Advance the shared LCG in `r29` (same constants as C++11's
/// `std::minstd`-style 64-bit mix; full-period odd multiplier).
fn lcg_step(b: &mut ProgramBuilder) {
    b.li(Reg::R9, 0x5851_F42D_4C95_7F2D_u64 as i64);
    b.mul(Reg::R29, Reg::R29, Reg::R9);
    b.addi(Reg::R29, Reg::R29, 0x1405_7B7E_F767_814F_u64 as i64 & 0x7FFF_FFFF);
}

impl Kernel {
    /// Emit one invocation of this kernel at the current position.
    pub fn emit(&self, b: &mut ProgramBuilder, ctx: EmitCtx) {
        match *self {
            Kernel::StreamSum { words } => {
                b.li(Reg::R1, ctx.base as i64);
                b.li(Reg::R2, 0);
                b.li(Reg::R3, words as i64);
                let top = b.label();
                b.load(Reg::R4, Reg::R1, 0);
                b.add(Reg::R5, Reg::R5, Reg::R4);
                b.addi(Reg::R1, Reg::R1, 8);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
            Kernel::StrideWalk { words, stride, count } => {
                debug_assert!(words.is_power_of_two());
                b.li(Reg::R1, 0); // index
                b.li(Reg::R2, 0); // trip counter
                b.li(Reg::R3, count as i64);
                let top = b.label();
                b.andi(Reg::R4, Reg::R1, (words - 1) as i64);
                b.shli(Reg::R4, Reg::R4, 3);
                b.li(Reg::R5, ctx.base as i64);
                b.add(Reg::R5, Reg::R5, Reg::R4);
                b.load(Reg::R6, Reg::R5, 0);
                b.addi(Reg::R1, Reg::R1, stride as i64);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
            Kernel::PointerChase { hops, .. } => {
                // r28 is the persistent cursor (prologue sets it to base).
                b.li(Reg::R2, 0);
                b.li(Reg::R3, hops as i64);
                let top = b.label();
                b.load(Reg::R28, Reg::R28, 0);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
            Kernel::RandomAccess { words, count } => {
                debug_assert!(words.is_power_of_two());
                b.li(Reg::R2, 0);
                b.li(Reg::R3, count as i64);
                let top = b.label();
                lcg_step(b);
                b.shri(Reg::R4, Reg::R29, 17);
                b.andi(Reg::R4, Reg::R4, (words - 1) as i64);
                b.shli(Reg::R4, Reg::R4, 3);
                b.li(Reg::R5, ctx.base as i64);
                b.add(Reg::R5, Reg::R5, Reg::R4);
                let do_load = b.new_label();
                let join = b.new_label();
                b.shri(Reg::R6, Reg::R29, 23);
                b.andi(Reg::R6, Reg::R6, 1);
                b.beq(Reg::R6, Reg::R0, do_load);
                b.store(Reg::R5, Reg::R6, 0);
                b.jump(join);
                b.bind(do_load);
                b.load(Reg::R7, Reg::R5, 0);
                b.bind(join);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
            Kernel::Branchy { count, predictability } => {
                b.li(Reg::R2, 0);
                b.li(Reg::R3, count as i64);
                let top = b.label();
                lcg_step(b);
                let mask = match predictability {
                    Predictability::Biased => 0x7, // taken 7/8 (strong bias)
                    Predictability::Random => 0x1, // taken 1/2
                };
                let skip = b.new_label();
                // Use high LCG bits: low bits of an LCG are periodic
                // (bit 0 strictly alternates), which a gshare predictor
                // learns trivially and would make "random" meaningless.
                b.shri(Reg::R4, Reg::R29, 31);
                b.andi(Reg::R4, Reg::R4, mask);
                b.bne(Reg::R4, Reg::R0, skip);
                b.addi(Reg::R5, Reg::R5, 1);
                b.xori(Reg::R6, Reg::R5, 0x2A);
                b.bind(skip);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
            Kernel::MatmulBlocked { n } => {
                let (a, bb, c) = (ctx.base, ctx.base + 8 * n * n, ctx.base + 16 * n * n);
                // for i: for j: f1 = 0; for k: f1 += A[i,k]*B[k,j]; C[i,j] = f1
                b.li(Reg::R1, 0); // i
                b.li(Reg::R3, n as i64);
                let i_top = b.label();
                b.li(Reg::R2, 0); // j
                let j_top = b.label();
                b.fsub(1, 1, 1); // f1 = 0
                b.li(Reg::R4, 0); // k
                                  // row base of A: a + i*n*8 — hoisted
                b.li(Reg::R5, (8 * n) as i64);
                b.mul(Reg::R6, Reg::R1, Reg::R5); // i*n*8
                b.li(Reg::R7, a as i64);
                b.add(Reg::R6, Reg::R6, Reg::R7); // &A[i,0]
                let k_top = b.label();
                // A[i,k]
                b.shli(Reg::R8, Reg::R4, 3);
                b.add(Reg::R8, Reg::R6, Reg::R8);
                b.fload(2, Reg::R8, 0);
                // B[k,j] = bb + (k*n + j)*8
                b.mul(Reg::R8, Reg::R4, Reg::R5); // k*n*8
                b.shli(Reg::R9, Reg::R2, 3);
                b.add(Reg::R8, Reg::R8, Reg::R9);
                b.li(Reg::R9, bb as i64);
                b.add(Reg::R8, Reg::R8, Reg::R9);
                b.fload(3, Reg::R8, 0);
                b.fmul(4, 2, 3);
                b.fadd(1, 1, 4);
                b.addi(Reg::R4, Reg::R4, 1);
                b.blt(Reg::R4, Reg::R3, k_top);
                // C[i,j]
                b.mul(Reg::R8, Reg::R1, Reg::R5);
                b.shli(Reg::R9, Reg::R2, 3);
                b.add(Reg::R8, Reg::R8, Reg::R9);
                b.li(Reg::R9, c as i64);
                b.add(Reg::R8, Reg::R8, Reg::R9);
                b.fstore(Reg::R8, 1, 0);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, j_top);
                b.addi(Reg::R1, Reg::R1, 1);
                b.blt(Reg::R1, Reg::R3, i_top);
            }
            Kernel::Stencil { words } => {
                let (src, dst) = (ctx.base, ctx.base + 8 * words);
                b.li(Reg::R1, 1); // i
                b.li(Reg::R3, (words - 1) as i64);
                b.li(Reg::R4, src as i64);
                b.li(Reg::R5, dst as i64);
                let top = b.label();
                b.shli(Reg::R2, Reg::R1, 3);
                b.add(Reg::R6, Reg::R4, Reg::R2);
                b.fload(1, Reg::R6, -8);
                b.fload(2, Reg::R6, 0);
                b.fload(3, Reg::R6, 8);
                b.fadd(4, 1, 3);
                b.fadd(4, 4, 2);
                b.add(Reg::R7, Reg::R5, Reg::R2);
                b.fstore(Reg::R7, 4, 0);
                b.addi(Reg::R1, Reg::R1, 1);
                b.blt(Reg::R1, Reg::R3, top);
            }
            Kernel::HashWrite { slots, count } => {
                debug_assert!(slots.is_power_of_two());
                b.li(Reg::R2, 0);
                b.li(Reg::R3, count as i64);
                let top = b.label();
                lcg_step(b);
                b.shri(Reg::R4, Reg::R29, 29);
                b.andi(Reg::R4, Reg::R4, (slots - 1) as i64);
                b.shli(Reg::R4, Reg::R4, 3);
                b.li(Reg::R5, ctx.base as i64);
                b.add(Reg::R5, Reg::R5, Reg::R4);
                b.load(Reg::R6, Reg::R5, 0);
                b.addi(Reg::R6, Reg::R6, 1);
                b.store(Reg::R5, Reg::R6, 0);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
            Kernel::CallChain { calls } => {
                b.li(Reg::R2, 0);
                b.li(Reg::R3, calls as i64);
                let top = b.label();
                b.call(Reg::R31, ctx.fn_f);
                b.addi(Reg::R2, Reg::R2, 1);
                b.blt(Reg::R2, Reg::R3, top);
            }
            Kernel::DivChain { count } => {
                b.li(Reg::R1, u32::MAX as i64);
                b.li(Reg::R2, 3);
                b.li(Reg::R4, 0);
                b.li(Reg::R5, count as i64);
                let top = b.label();
                b.div(Reg::R1, Reg::R1, Reg::R2);
                b.addi(Reg::R1, Reg::R1, 1_000_003);
                b.addi(Reg::R4, Reg::R4, 1);
                b.blt(Reg::R4, Reg::R5, top);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_isa::{Emulator, ProgramBuilder, Reg};

    /// Emit a standalone program around one kernel and count dynamic
    /// instructions.
    fn run_kernel(k: Kernel) -> u64 {
        let mut b = ProgramBuilder::new("k");
        let main = b.new_label();
        b.jump(main);
        let fn_f = emit_call_targets(&mut b);
        b.bind(main);
        let base = b.alloc_data(k.data_words().max(1));
        if let Kernel::PointerChase { nodes, .. } = k {
            // Identity cycle for the test.
            for i in 0..nodes {
                b.init_word(base + i * 8, base + ((i + 1) % nodes) * 8);
            }
            b.li(Reg::R28, base as i64);
        }
        b.li(Reg::R29, 0x1234_5678);
        k.emit(&mut b, EmitCtx { base, fn_f });
        b.halt();
        let p = b.build();
        let mut emu = Emulator::new(&p);
        while emu.step().is_some() {}
        assert!(emu.is_halted());
        emu.seq()
    }

    #[test]
    fn all_kernels_terminate() {
        let kernels = [
            Kernel::StreamSum { words: 256 },
            Kernel::StrideWalk { words: 256, stride: 7, count: 100 },
            Kernel::PointerChase { nodes: 64, hops: 200 },
            Kernel::RandomAccess { words: 256, count: 100 },
            Kernel::Branchy { count: 100, predictability: Predictability::Random },
            Kernel::Branchy { count: 100, predictability: Predictability::Biased },
            Kernel::MatmulBlocked { n: 6 },
            Kernel::Stencil { words: 128 },
            Kernel::HashWrite { slots: 128, count: 100 },
            Kernel::CallChain { calls: 50 },
            Kernel::DivChain { count: 50 },
        ];
        for k in kernels {
            let n = run_kernel(k);
            assert!(n > 0, "{k:?} committed nothing");
        }
    }

    #[test]
    fn approx_dyn_len_within_2x() {
        let kernels = [
            Kernel::StreamSum { words: 512 },
            Kernel::StrideWalk { words: 512, stride: 5, count: 300 },
            Kernel::PointerChase { nodes: 128, hops: 400 },
            Kernel::RandomAccess { words: 512, count: 200 },
            Kernel::Branchy { count: 300, predictability: Predictability::Random },
            Kernel::MatmulBlocked { n: 8 },
            Kernel::Stencil { words: 256 },
            Kernel::HashWrite { slots: 256, count: 200 },
            Kernel::CallChain { calls: 100 },
            Kernel::DivChain { count: 100 },
        ];
        for k in kernels {
            let actual = run_kernel(k) as f64;
            let approx = k.approx_dyn_len() as f64;
            let ratio = actual / approx;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{k:?}: actual {actual}, approx {approx}, ratio {ratio:.2}"
            );
        }
    }

    #[test]
    fn branchy_bias_differs() {
        // Taken skips the work path. Biased takes ~7/8 (skips often),
        // Random ~1/2, so the biased variant commits fewer instructions.
        let biased =
            run_kernel(Kernel::Branchy { count: 1000, predictability: Predictability::Biased });
        let random =
            run_kernel(Kernel::Branchy { count: 1000, predictability: Predictability::Random });
        assert!(biased < random, "biased {biased} vs random {random}");
    }

    #[test]
    fn data_words_cover_matmul() {
        assert_eq!(Kernel::MatmulBlocked { n: 4 }.data_words(), 48);
        assert_eq!(Kernel::Stencil { words: 100 }.data_words(), 200);
        assert_eq!(
            Kernel::Branchy { count: 1, predictability: Predictability::Biased }.data_words(),
            0
        );
    }
}
