//! # spectral-workloads — a synthetic SPEC2K-like benchmark suite
//!
//! The paper evaluates on 41 SPEC CPU2000 benchmark/input combinations.
//! Real SPEC binaries (and an Alpha toolchain) are unavailable here, so
//! this crate generates *synthetic* SRISC benchmarks (22 of them) from parameterized
//! [`Kernel`]s, each tuned to reproduce the workload property that drives
//! a paper experiment:
//!
//! * **memory footprint & reuse-distance spectrum** — streaming walks,
//!   strided walks, pointer chasing, and random access at configurable
//!   footprints control cache warming behaviour (Figs 4/5, Table 3),
//! * **branch entropy** — biased vs LCG-random branches control
//!   predictor warming,
//! * **CPI variance & phases** — benchmarks run phase schedules
//!   ([`Schedule::Phased`]) so CPI varies across the run, which is what
//!   determines sample size (Table 2's runtime spread),
//! * **instruction mix** — FP stencil/matmul kernels vs integer
//!   pointer/branch kernels mirror the CFP/CINT split.
//!
//! Benchmark lengths are scaled ~10⁴× below SPEC reference inputs so a
//! *full-detail reference simulation* — the ground truth every bias
//! experiment needs — is feasible; every paper comparison is ratio- or
//! shape-based, so the scaling preserves the conclusions.
//!
//! ## Example
//!
//! ```
//! use spectral_workloads::{suite, by_name};
//!
//! let all = suite();
//! assert!(all.len() >= 16);
//! let mcf = by_name("mcf-like").expect("in suite");
//! let program = mcf.build();
//! assert!(program.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bench;
mod kernel;

pub use bench::{by_name, suite, tiny, Benchmark, Schedule};
pub use kernel::{emit_call_targets, EmitCtx, Kernel, Predictability};

use spectral_isa::{Emulator, Program};

/// Run `program` functionally to completion and return the number of
/// committed instructions (the benchmark length `N` that sample designs
/// need).
///
/// This is a full functional pass; cache the result. A safety cap of
/// 2 × 10⁹ instructions guards against runaway programs.
pub fn dynamic_length(program: &Program) -> u64 {
    let mut emu = Emulator::new(program);
    let cap = 2_000_000_000u64;
    while emu.step().is_some() {
        if emu.seq() >= cap {
            break;
        }
    }
    emu.seq()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_benchmark_runs_to_completion() {
        let b = tiny();
        let p = b.build();
        let n = dynamic_length(&p);
        assert!(n > 10_000, "tiny benchmark too short: {n}");
        assert!(n < 500_000, "tiny benchmark too long: {n}");
    }

    #[test]
    fn dynamic_length_is_deterministic() {
        let p = tiny().build();
        assert_eq!(dynamic_length(&p), dynamic_length(&p));
    }
}
