//! Named synthetic benchmarks and the suite catalogue.

use crate::kernel::{emit_call_targets, EmitCtx, Kernel, Predictability};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spectral_isa::{Program, ProgramBuilder, Reg};

/// How a benchmark schedules its kernels over outer iterations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// Contiguous program phases: the first `1/k` of iterations run
    /// kernel 0, the next `1/k` kernel 1, and so on — SPEC-like phase
    /// behaviour that gives benchmarks CPI variance across their run.
    Phased,
    /// Kernel chosen per iteration from LCG bits — fine-grained mixing.
    Interleaved,
}

/// A named synthetic benchmark: a kernel mix, a schedule, and a target
/// dynamic length.
///
/// Build the executable [`Program`] with [`build`](Self::build); the
/// construction is fully deterministic in the benchmark's seed.
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: &'static str,
    description: &'static str,
    kernels: Vec<Kernel>,
    schedule: Schedule,
    target_len: u64,
    seed: u64,
}

impl Benchmark {
    /// Create a custom benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `kernels` is empty or `target_len` is zero.
    pub fn new(
        name: &'static str,
        description: &'static str,
        kernels: Vec<Kernel>,
        schedule: Schedule,
        target_len: u64,
        seed: u64,
    ) -> Self {
        assert!(!kernels.is_empty(), "benchmark needs at least one kernel");
        assert!(target_len > 0, "target length must be positive");
        Benchmark { name, description, kernels, schedule, target_len, seed }
    }

    /// The benchmark's name (e.g. `"mcf-like"`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of what the benchmark models.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The kernel mix.
    pub fn kernels(&self) -> &[Kernel] {
        &self.kernels
    }

    /// The kernel schedule.
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// Approximate committed-instruction target the outer iteration
    /// count was derived from.
    pub fn target_len(&self) -> u64 {
        self.target_len
    }

    /// A variant of this benchmark scaled to `factor ×` its dynamic
    /// length (same kernels, schedule, and data footprints — only the
    /// outer iteration count grows). Used by runtime experiments, where
    /// the paper's cost ratios depend on benchmark length dominating
    /// sample size.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn scaled(&self, factor: u64) -> Benchmark {
        assert!(factor > 0, "scale factor must be positive");
        let mut b = self.clone();
        b.target_len *= factor;
        b
    }

    /// Per-kernel iteration counts. Kernels differ in per-invocation
    /// cost by orders of magnitude, so a phased benchmark must give each
    /// phase an (approximately) equal share of *instructions*, not of
    /// iterations — otherwise one kernel dominates the dynamic stream
    /// and the benchmark loses its intended phase structure.
    fn phase_iters(&self) -> Vec<u64> {
        let share = self.target_len / self.kernels.len() as u64;
        self.kernels.iter().map(|k| (share / k.approx_dyn_len().max(1)).max(1)).collect()
    }

    fn outer_iters(&self) -> u64 {
        match self.schedule {
            Schedule::Phased => self.phase_iters().iter().sum(),
            Schedule::Interleaved => {
                let mean: u64 = self.kernels.iter().map(Kernel::approx_dyn_len).sum::<u64>()
                    / self.kernels.len() as u64;
                (self.target_len / mean.max(1)).max(self.kernels.len() as u64)
            }
        }
    }

    /// Generate the SRISC program image.
    pub fn build(&self) -> Program {
        let mut b = ProgramBuilder::new(self.name);
        let main = b.new_label();
        b.jump(main);
        let fn_f = emit_call_targets(&mut b);
        b.bind(main);

        // Allocate and initialize data per kernel instance.
        let mut ctxs = Vec::with_capacity(self.kernels.len());
        let mut chase_base = None;
        for k in &self.kernels {
            let base = b.alloc_data(k.data_words().max(1));
            if let Kernel::PointerChase { nodes, .. } = *k {
                init_chase_cycle(&mut b, base, nodes, self.seed);
                chase_base.get_or_insert(base);
            }
            ctxs.push(EmitCtx { base, fn_f });
        }

        // Prologue: LCG seed, chase cursor, outer loop bounds.
        let iters = self.outer_iters();
        b.li(Reg::R29, (self.seed | 1) as i64);
        b.li(Reg::R28, chase_base.unwrap_or(0) as i64);
        b.li(Reg::R10, 0);
        b.li(Reg::R11, iters as i64);

        let outer_top = b.label();
        let tail = b.new_label();
        let n = self.kernels.len();

        // Dispatch to one kernel block per iteration.
        let blocks: Vec<_> = (0..n).map(|_| b.new_label()).collect();
        match self.schedule {
            Schedule::Phased => {
                // Cumulative iteration thresholds sized so every phase
                // executes a similar number of instructions.
                let phase_iters = self.phase_iters();
                let mut cum = 0u64;
                for (k, block) in blocks.iter().enumerate().take(n - 1) {
                    cum += phase_iters[k];
                    b.slti(Reg::R12, Reg::R10, cum as i64);
                    b.bne(Reg::R12, Reg::R0, *block);
                }
                b.jump(blocks[n - 1]);
            }
            Schedule::Interleaved => {
                let npow2 = n.next_power_of_two() as i64;
                // High LCG bits: the low bits cycle with tiny periods.
                b.shri(Reg::R12, Reg::R29, 27);
                b.andi(Reg::R12, Reg::R12, npow2 - 1);
                for (k, block) in blocks.iter().enumerate().take(n - 1) {
                    b.slti(Reg::R13, Reg::R12, k as i64 + 1);
                    b.bne(Reg::R13, Reg::R0, *block);
                }
                b.jump(blocks[n - 1]);
            }
        }

        for ((kernel, block), ctx) in self.kernels.iter().zip(&blocks).zip(&ctxs) {
            b.bind(*block);
            kernel.emit(&mut b, *ctx);
            b.jump(tail);
        }

        b.bind(tail);
        // Mix the LCG once per iteration so interleaved selection varies.
        b.li(Reg::R9, 0x5851_F42D_4C95_7F2D_u64 as i64);
        b.mul(Reg::R29, Reg::R29, Reg::R9);
        b.addi(Reg::R29, Reg::R29, 0x14057B7E);
        b.addi(Reg::R10, Reg::R10, 1);
        b.blt(Reg::R10, Reg::R11, outer_top);
        b.halt();
        b.build()
    }
}

/// Initialize a shuffled pointer cycle over `nodes` nodes at `base`.
fn init_chase_cycle(b: &mut ProgramBuilder, base: u64, nodes: u64, seed: u64) {
    let mut order: Vec<u64> = (0..nodes).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    order.shuffle(&mut rng);
    for w in 0..nodes {
        let cur = order[w as usize];
        let next = order[((w + 1) % nodes) as usize];
        b.init_word(base + cur * 8, base + next * 8);
    }
}

/// The full synthetic suite: twenty-two benchmarks spanning the memory-,
/// branch-, FP-, and call-bound corners SPEC CPU2000 covers, in roughly
/// the proportions the paper's figures single out (gcc-, mcf-, and
/// gzip-like entries appear in Figs 4/5; ammp-/parser-like entries are
/// the slow outliers of Table 2).
pub fn suite() -> Vec<Benchmark> {
    use Kernel::*;
    use Predictability::*;
    vec![
        Benchmark::new(
            "gzip-like",
            "streaming compression: sequential walks + biased branches over a small table",
            vec![
                StreamSum { words: 1 << 14 },
                Branchy { count: 1500, predictability: Biased },
                HashWrite { slots: 1 << 12, count: 600 },
            ],
            Schedule::Phased,
            2_500_000,
            11,
        ),
        Benchmark::new(
            "gcc-like",
            "compiler: hard branches, hashing, calls, strided IR walks; strong phases",
            vec![
                Branchy { count: 1200, predictability: Random },
                CallChain { calls: 500 },
                HashWrite { slots: 1 << 16, count: 700 },
                StrideWalk { words: 1 << 15, stride: 17, count: 800 },
            ],
            Schedule::Phased,
            4_000_000,
            12,
        ),
        Benchmark::new(
            "mcf-like",
            "network simplex: large pointer chases with random access; memory bound",
            vec![
                PointerChase { nodes: 1 << 18, hops: 900 },
                RandomAccess { words: 1 << 18, count: 800 },
                PointerChase { nodes: 1 << 18, hops: 900 },
                StreamSum { words: 1 << 13 },
            ],
            Schedule::Interleaved,
            5_000_000,
            13,
        ),
        Benchmark::new(
            "parser-like",
            "dictionary parsing: pointer chasing + unpredictable branches + calls",
            vec![
                PointerChase { nodes: 1 << 18, hops: 2000 },
                Branchy { count: 900, predictability: Random },
                CallChain { calls: 400 },
            ],
            Schedule::Interleaved,
            5_000_000,
            14,
        ),
        Benchmark::new(
            "perlbmk-like",
            "interpreter: call-dominated with biased dispatch branches (shortest run)",
            vec![
                CallChain { calls: 900 },
                Branchy { count: 800, predictability: Biased },
                HashWrite { slots: 1 << 14, count: 500 },
            ],
            Schedule::Interleaved,
            1_500_000,
            15,
        ),
        Benchmark::new(
            "vpr-like",
            "place & route: random access over a netlist + simulated-annealing branches",
            vec![
                RandomAccess { words: 1 << 18, count: 900 },
                Branchy { count: 900, predictability: Random },
                Stencil { words: 1 << 10 },
            ],
            Schedule::Interleaved,
            3_500_000,
            16,
        ),
        Benchmark::new(
            "crafty-like",
            "chess: branch storms over hash tables with small hot data",
            vec![
                Branchy { count: 1400, predictability: Random },
                HashWrite { slots: 1 << 15, count: 800 },
                StreamSum { words: 1 << 11 },
            ],
            Schedule::Interleaved,
            3_500_000,
            17,
        ),
        Benchmark::new(
            "eon-like",
            "ray tracing: call-heavy FP with predictable control",
            vec![
                CallChain { calls: 700 },
                MatmulBlocked { n: 10 },
                Branchy { count: 600, predictability: Biased },
            ],
            Schedule::Interleaved,
            2_000_000,
            18,
        ),
        Benchmark::new(
            "bzip2-like",
            "block sorting: large streaming buffers + data-dependent branches",
            vec![
                StreamSum { words: 1 << 17 },
                Branchy { count: 1100, predictability: Random },
                HashWrite { slots: 1 << 13, count: 700 },
            ],
            Schedule::Phased,
            4_000_000,
            19,
        ),
        Benchmark::new(
            "twolf-like",
            "standard-cell placement: random access + branchy cost evaluation",
            vec![
                RandomAccess { words: 1 << 17, count: 1000 },
                Branchy { count: 1000, predictability: Random },
            ],
            Schedule::Interleaved,
            3_500_000,
            20,
        ),
        Benchmark::new(
            "swim-like",
            "shallow-water FP: long stencil sweeps, near-perfect branches (fastest to sample)",
            vec![Stencil { words: 1 << 17 }, StreamSum { words: 1 << 16 }],
            Schedule::Phased,
            5_000_000,
            21,
        ),
        Benchmark::new(
            "mgrid-like",
            "multigrid FP: stencils at mixed working sets + dense kernels (longest benchmark)",
            vec![
                Stencil { words: 1 << 16 },
                MatmulBlocked { n: 12 },
                Stencil { words: 1 << 12 },
            ],
            Schedule::Phased,
            6_000_000,
            22,
        ),
        Benchmark::new(
            "applu-like",
            "LU solver: dense FP with long-latency divide stretches",
            vec![
                MatmulBlocked { n: 10 },
                Stencil { words: 1 << 14 },
                DivChain { count: 400 },
            ],
            Schedule::Phased,
            4_500_000,
            23,
        ),
        Benchmark::new(
            "art-like",
            "neural net: random access over weights + streaming activation sweeps",
            vec![
                RandomAccess { words: 1 << 19, count: 900 },
                StreamSum { words: 1 << 15 },
            ],
            Schedule::Interleaved,
            3_500_000,
            24,
        ),
        Benchmark::new(
            "equake-like",
            "FEM: pointer-based mesh walks + element stencils",
            vec![
                PointerChase { nodes: 1 << 17, hops: 1500 },
                Stencil { words: 1 << 14 },
            ],
            Schedule::Interleaved,
            3_500_000,
            25,
        ),
        Benchmark::new(
            "facerec-like",
            "face recognition: FP correlation kernels over image windows with strided reads",
            vec![
                MatmulBlocked { n: 12 },
                StrideWalk { words: 1 << 16, stride: 33, count: 900 },
                Stencil { words: 1 << 13 },
            ],
            Schedule::Phased,
            4_000_000,
            27,
        ),
        Benchmark::new(
            "mesa-like",
            "software rasterizer: FP transforms with biased span branches and table writes",
            vec![
                MatmulBlocked { n: 8 },
                Branchy { count: 900, predictability: Biased },
                HashWrite { slots: 1 << 14, count: 700 },
                StreamSum { words: 1 << 13 },
            ],
            Schedule::Interleaved,
            3_500_000,
            28,
        ),
        Benchmark::new(
            "vortex-like",
            "object database: pointer-linked records, hashed lookups, call-heavy transactions",
            vec![
                PointerChase { nodes: 1 << 16, hops: 800 },
                HashWrite { slots: 1 << 15, count: 600 },
                CallChain { calls: 500 },
            ],
            Schedule::Interleaved,
            4_000_000,
            29,
        ),
        Benchmark::new(
            "gap-like",
            "computational group theory: multiply/divide-heavy integer kernels with hashing",
            vec![
                DivChain { count: 300 },
                HashWrite { slots: 1 << 13, count: 800 },
                Branchy { count: 800, predictability: Random },
            ],
            Schedule::Interleaved,
            3_000_000,
            30,
        ),
        Benchmark::new(
            "lucas-like",
            "Lucas-Lehmer FFT: strided FP sweeps over large arrays, highly regular control",
            vec![
                StrideWalk { words: 1 << 17, stride: 511, count: 1000 },
                Stencil { words: 1 << 15 },
            ],
            Schedule::Phased,
            4_500_000,
            31,
        ),
        Benchmark::new(
            "sixtrack-like",
            "particle tracking: dense FP with predictable loops and periodic checkpooint writes",
            vec![
                MatmulBlocked { n: 10 },
                Stencil { words: 1 << 12 },
                HashWrite { slots: 1 << 10, count: 400 },
            ],
            Schedule::Phased,
            3_500_000,
            32,
        ),
        Benchmark::new(
            "ammp-like",
            "molecular dynamics: chases, divides, and stencils in strong phases (highest CPI variance)",
            vec![
                PointerChase { nodes: 1 << 19, hops: 2200 },
                DivChain { count: 500 },
                Stencil { words: 1 << 15 },
            ],
            Schedule::Phased,
            5_000_000,
            26,
        ),
    ]
}

/// Look up a suite benchmark by name.
pub fn by_name(name: &str) -> Option<Benchmark> {
    suite().into_iter().find(|b| b.name() == name)
}

/// A fast, small benchmark (~10⁵ instructions) for tests and examples.
pub fn tiny() -> Benchmark {
    use Kernel::*;
    Benchmark::new(
        "tiny",
        "small mixed benchmark for tests: one of each behaviour class",
        vec![
            StreamSum { words: 1 << 8 },
            Branchy { count: 120, predictability: Predictability::Random },
            HashWrite { slots: 1 << 8, count: 100 },
            PointerChase { nodes: 1 << 10, hops: 300 },
        ],
        Schedule::Phased,
        120_000,
        7,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic_length;

    #[test]
    fn suite_has_twenty_two_unique_names() {
        let s = suite();
        assert_eq!(s.len(), 22);
        let mut names: Vec<_> = s.iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 22);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("mcf-like").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn all_programs_build() {
        for b in suite() {
            let p = b.build();
            assert!(p.len() > 10, "{} produced a trivial program", b.name());
            assert_eq!(p.name(), b.name());
        }
    }

    #[test]
    fn build_is_deterministic() {
        let b = by_name("gcc-like").unwrap();
        assert_eq!(b.build(), b.build());
    }

    #[test]
    fn tiny_length_near_target() {
        let b = tiny();
        let n = dynamic_length(&b.build());
        let t = b.target_len();
        assert!(
            n as f64 / t as f64 > 0.4 && (n as f64 / t as f64) < 2.5,
            "dynamic length {n} far from target {t}"
        );
    }

    #[test]
    fn phased_schedule_changes_behaviour_over_time() {
        // In a phased benchmark, the memory-access mix of the first and
        // last quarters should differ (different kernels).
        use spectral_isa::{Emulator, OpClass};
        let p = tiny().build();
        let total = dynamic_length(&p);
        let mut emu = Emulator::new(&p);
        let mut first_quarter_mem = 0u64;
        let mut last_quarter_mem = 0u64;
        while let Some(d) = emu.step() {
            let q = d.seq * 4 / total;
            if matches!(d.op, OpClass::Load | OpClass::Store) {
                if q == 0 {
                    first_quarter_mem += 1;
                } else if q == 3 {
                    last_quarter_mem += 1;
                }
            }
        }
        let lo = first_quarter_mem.min(last_quarter_mem) as f64;
        let hi = first_quarter_mem.max(last_quarter_mem) as f64;
        assert!(
            hi / lo.max(1.0) > 1.1,
            "phases look identical: {first_quarter_mem} vs {last_quarter_mem}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one kernel")]
    fn empty_mix_rejected() {
        Benchmark::new("x", "", vec![], Schedule::Phased, 1000, 0);
    }
}
