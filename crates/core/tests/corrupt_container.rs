//! Corruption robustness: arbitrary truncation and bit-flips of either
//! container format must surface as typed errors — never a panic, never
//! a silently wrong decode that trips an internal `expect`.
//!
//! The v1 path guards frame-by-frame parsing; the v2 path guards the
//! header/trailer/footer geometry checks and the CRC-verified
//! positioned reads behind them (`from_bytes` serves v2 images through
//! the same paged reader as `open`).

use std::sync::OnceLock;

use proptest::prelude::*;
use spectral_core::{CreationConfig, LivePointLibrary, V2WriteOptions};
use spectral_uarch::MachineConfig;
use spectral_workloads::tiny;

fn library() -> &'static LivePointLibrary {
    static LIB: OnceLock<LivePointLibrary> = OnceLock::new();
    LIB.get_or_init(|| {
        let p = tiny().build();
        let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(12);
        LivePointLibrary::create(&p, &cfg).expect("fixture library")
    })
}

fn v1_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| library().to_bytes().expect("v1 bytes"))
}

fn v2_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = std::env::temp_dir()
            .join(format!("spectral_corrupt_fixture_{}.splp", std::process::id()));
        library().save_v2(&path, &V2WriteOptions::default()).expect("save v2");
        let bytes = std::fs::read(&path).expect("read v2");
        std::fs::remove_file(&path).ok();
        bytes
    })
}

/// Parse possibly-corrupt container bytes; when parsing succeeds, every
/// record must decode to `Ok` or a typed error — no panics anywhere.
fn parse_and_sweep(bytes: &[u8]) {
    let Ok(lib) = LivePointLibrary::from_bytes(bytes) else { return };
    for i in 0..lib.len() {
        let _ = lib.get(i);
    }
    let _ = lib.content_hash();
    let _ = lib.total_compressed_bytes();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn truncated_v1_never_panics(cut in 0usize..(1usize << 16) + 1) {
        let bytes = v1_bytes();
        parse_and_sweep(&bytes[..cut.min(bytes.len())]);
    }

    #[test]
    fn truncated_v2_never_panics(cut in 0usize..(1usize << 16) + 1) {
        let bytes = v2_bytes();
        parse_and_sweep(&bytes[..cut.min(bytes.len())]);
    }

    #[test]
    fn bit_flipped_v1_never_panics(offset in 0usize..1usize << 16, bit in 0u8..8) {
        let mut bytes = v1_bytes().to_vec();
        let offset = offset % bytes.len();
        bytes[offset] ^= 1 << bit;
        parse_and_sweep(&bytes);
    }

    #[test]
    fn bit_flipped_v2_never_panics(offset in 0usize..1usize << 16, bit in 0u8..8) {
        let mut bytes = v2_bytes().to_vec();
        let offset = offset % bytes.len();
        bytes[offset] ^= 1 << bit;
        parse_and_sweep(&bytes);
    }

    #[test]
    fn corrupt_v2_record_body_is_a_typed_crc_error(noise in 1u16..256) {
        // Flip a byte inside the first record body specifically: the
        // footer still parses, so the fault must surface as a CRC (or
        // decode) error on the read path, not before.
        let bytes = v2_bytes();
        let lib = LivePointLibrary::from_bytes(bytes).expect("pristine parses");
        let mut corrupt = bytes.to_vec();
        // The metadata frame ends where the body starts; corrupt one
        // byte well past the header but before the footer by scanning
        // for a position that changes a record's decode outcome.
        let mid = bytes.len() / 2;
        corrupt[mid] ^= noise as u8;
        let Ok(broken) = LivePointLibrary::from_bytes(&corrupt) else { return };
        for i in 0..broken.len() {
            match (lib.get(i), broken.get(i)) {
                (Ok(a), Ok(b)) => {
                    // Either the flipped byte missed this record (equal
                    // decode) or the LZSS stream happened to still be
                    // CRC-breaking — which get() would have errored on.
                    let _ = (a, b);
                }
                (_, Err(_)) => {} // typed error: exactly what we want
                (Err(_), Ok(_)) => prop_assert!(false, "pristine decode failed"),
            }
        }
    }
}
