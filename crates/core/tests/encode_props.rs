//! Property tests for the live-point wire format: arbitrary (valid)
//! warm-state payloads must round-trip bit-exactly through DER + LZSS.

use proptest::prelude::*;
use spectral_cache::{CacheConfig, Csr, HierarchyConfig};
use spectral_codec::lzss;
use spectral_core::{LivePoint, LiveState, StateScope, WarmPayload};
use spectral_isa::{ArchState, RegFile};
use spectral_stats::WindowSpec;
use spectral_uarch::{BpredConfig, BranchPredictor};

fn tlb_as_cache(entries: u32, assoc: u32, page: u64) -> CacheConfig {
    CacheConfig::new(entries as u64 * page, assoc, page).expect("valid")
}

fn arb_csr(cfg: CacheConfig) -> impl Strategy<Value = Csr> {
    proptest::collection::vec((0u64..1 << 26, any::<bool>()), 0..300).prop_map(move |accesses| {
        let mut csr = Csr::new(cfg);
        for (a, w) in accesses {
            csr.record(a, w);
        }
        csr
    })
}

fn arb_bpred() -> impl Strategy<Value = spectral_uarch::BpredSnapshot> {
    proptest::collection::vec((0u64..4096, any::<bool>()), 0..300).prop_map(|updates| {
        let mut bp = BranchPredictor::new(BpredConfig::paper_2k());
        for (pc4, taken) in updates {
            let pc = 0x40_0000 + pc4 * 4;
            bp.update(
                pc,
                pc + 4,
                &spectral_isa::BranchInfo {
                    taken,
                    target: pc + 96,
                    conditional: true,
                    indirect: false,
                    is_call: false,
                    is_return: false,
                },
            );
        }
        bp.snapshot()
    })
}

fn arb_livepoint() -> impl Strategy<Value = LivePoint> {
    let h = HierarchyConfig::baseline_8way();
    (
        arb_csr(h.l1i),
        arb_csr(h.l1d),
        arb_csr(h.l2),
        arb_csr(tlb_as_cache(128, 4, 4096)),
        arb_csr(tlb_as_cache(256, 4, 4096)),
        arb_bpred(),
        proptest::collection::btree_map(0u64..1 << 28, any::<u64>(), 0..200),
        any::<[u64; 32]>(),
        0u64..1 << 30,
    )
        .prop_map(move |(l1i, l1d, l2, itlb, dtlb, bp, mem, regs_raw, seq)| {
            let mut regs = RegFile::new();
            regs.set_int_regs(regs_raw);
            LivePoint {
                benchmark: "prop-bench".into(),
                window: WindowSpec {
                    detail_start: seq,
                    measure_start: seq + 2000,
                    measure_len: 1000,
                },
                scope: StateScope::Full,
                live_state: LiveState {
                    arch: ArchState { regs, pc: 0x40_0000 + (seq % 512) * 4, seq },
                    memory: mem.into_iter().map(|(a, v)| (a << 3, v)).collect(),
                    conventional_bytes: 1 << 22,
                },
                warm: WarmPayload { l1i, l1d, l2, itlb, dtlb, bpreds: vec![bp] },
                max_hierarchy: h,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn der_roundtrip(lp in arb_livepoint()) {
        let bytes = lp.to_der();
        let back = LivePoint::from_der(&bytes).expect("decode");
        prop_assert_eq!(&back.benchmark, &lp.benchmark);
        prop_assert_eq!(back.window, lp.window);
        prop_assert_eq!(&back.live_state, &lp.live_state);
        prop_assert_eq!(back.warm.l1d.to_entries(), lp.warm.l1d.to_entries());
        prop_assert_eq!(back.warm.l2.to_entries(), lp.warm.l2.to_entries());
        prop_assert_eq!(back.warm.itlb.to_entries(), lp.warm.itlb.to_entries());
        prop_assert_eq!(back.warm.dtlb.to_entries(), lp.warm.dtlb.to_entries());
        prop_assert_eq!(&back.warm.bpreds, &lp.warm.bpreds);
    }

    #[test]
    fn compressed_roundtrip(lp in arb_livepoint()) {
        let bytes = lp.to_der();
        let packed = lzss::compress(&bytes);
        let unpacked = lzss::decompress(&packed).expect("lzss");
        prop_assert_eq!(unpacked, bytes);
    }

    #[test]
    fn decode_survives_truncation(lp in arb_livepoint(), cut in 0.0f64..1.0) {
        let bytes = lp.to_der();
        let n = ((bytes.len() as f64) * cut) as usize;
        // Must error or succeed, never panic.
        let _ = LivePoint::from_der(&bytes[..n]);
    }
}
