//! Differential resume tests: a run interrupted at an arbitrary point
//! and resumed from its checkpoint must produce estimates **bit
//! identical** to the same run never having been interrupted — serial
//! and parallel (1/2/4 threads), in both scheduling modes, for all
//! three runner kinds.
//!
//! Interruption uses [`Recovery::abort_after`], the deterministic
//! in-process stand-in for `kill -9` (the experiments crate exercises
//! real SIGKILL via `SPECTRAL_FAULT_KILL`). Corruption cases mirror the
//! corrupt-container suite: arbitrary truncation or a single bit-flip
//! of a checkpoint sidecar must surface as a one-line typed error —
//! never a panic, never a silent restart from zero.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::prelude::*;
use spectral_core::{
    CoreError, CreationConfig, LivePointLibrary, MatchedRunner, OnlineRunner, Recovery,
    RunCheckpoint, RunPolicy, SchedMode, SweepRunner,
};
use spectral_uarch::MachineConfig;
use spectral_workloads::{tiny, Benchmark};

fn bench() -> &'static Benchmark {
    static B: OnceLock<Benchmark> = OnceLock::new();
    B.get_or_init(tiny)
}

fn library() -> &'static LivePointLibrary {
    static LIB: OnceLock<LivePointLibrary> = OnceLock::new();
    LIB.get_or_init(|| {
        let p = bench().build();
        let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(12);
        LivePointLibrary::create(&p, &cfg).expect("fixture library")
    })
}

/// Exhaustive policy: parallel early termination stops at a
/// scheduling-dependent point, so the cross-mode differential runs
/// process the whole library. A small merge stride keeps the batching
/// machinery engaged even on the tiny fixture.
fn exhaustive(sched: SchedMode) -> RunPolicy {
    RunPolicy { stop_at_target: false, merge_stride: 3, sched, ..RunPolicy::default() }
}

/// Fresh sidecar path in the per-process temp dir.
fn ckpt(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spectral-resume-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = std::fs::remove_file(&path);
    path
}

fn assert_bits(label: &str, a: f64, b: f64) {
    assert_eq!(a.to_bits(), b.to_bits(), "{label}: {a} vs {b}");
}

/// Interrupt after `kill_at` fresh points, then resume to completion;
/// both legs run through `run` (serial when `threads == None`). Returns
/// the resumed estimate for comparison against an uninterrupted run.
fn interrupted_then_resumed_online(
    runner: &OnlineRunner,
    policy: &RunPolicy,
    threads: Option<usize>,
    kill_at: u64,
    path: &PathBuf,
) -> spectral_core::Estimate {
    let program = bench().build();
    let crash = Recovery::none().checkpoint_to(path, 2).abort_after(kill_at);
    let err = match threads {
        Some(t) => runner.run_parallel_recoverable(&program, policy, t, &crash).unwrap_err(),
        None => runner.run_recoverable(&program, policy, &crash).unwrap_err(),
    };
    assert!(matches!(err, CoreError::Interrupted { .. }), "expected interruption, got: {err}");
    let resume = Recovery::none().checkpoint_to(path, 2).resume_from(path);
    match threads {
        Some(t) => runner.run_parallel_recoverable(&program, policy, t, &resume).unwrap(),
        None => runner.run_recoverable(&program, policy, &resume).unwrap(),
    }
}

#[test]
fn online_serial_resume_is_bit_identical() {
    let runner = OnlineRunner::new(library(), MachineConfig::eight_way());
    let program = bench().build();
    let policy = exhaustive(SchedMode::DynamicChunk);
    let baseline = runner.run(&program, &policy).unwrap();
    for kill_at in [1u64, 5, 10] {
        let path = ckpt(&format!("online-serial-{kill_at}.ckpt"));
        let resumed = interrupted_then_resumed_online(&runner, &policy, None, kill_at, &path);
        assert_bits("mean", baseline.mean(), resumed.mean());
        assert_bits("half_width", baseline.half_width(), resumed.half_width());
        assert_eq!(baseline.processed(), resumed.processed(), "kill at {kill_at}");
    }
}

#[test]
fn online_parallel_resume_is_bit_identical_all_threads_and_modes() {
    let runner = OnlineRunner::new(library(), MachineConfig::eight_way());
    let program = bench().build();
    for sched in [SchedMode::DynamicChunk, SchedMode::StaticStride] {
        let policy = exhaustive(sched);
        let baseline = runner.run(&program, &policy).unwrap();
        for threads in [1usize, 2, 4] {
            let path = ckpt(&format!("online-par-{sched:?}-{threads}.ckpt"));
            let resumed =
                interrupted_then_resumed_online(&runner, &policy, Some(threads), 5, &path);
            assert_bits("mean", baseline.mean(), resumed.mean());
            assert_bits("half_width", baseline.half_width(), resumed.half_width());
            assert_eq!(
                baseline.processed(),
                resumed.processed(),
                "{sched:?} x{threads}: processed-set must match the uninterrupted run"
            );
        }
    }
}

#[test]
fn online_survives_repeated_interruptions() {
    let runner = OnlineRunner::new(library(), MachineConfig::eight_way());
    let program = bench().build();
    let policy = exhaustive(SchedMode::DynamicChunk);
    let baseline = runner.run(&program, &policy).unwrap();
    let path = ckpt("online-repeated.ckpt");

    // Crash, resume-and-crash-again, then resume to completion: the
    // sidecar is re-seeded with restored observations on every leg, so
    // progress accumulates monotonically across crashes.
    let first = Recovery::none().checkpoint_to(&path, 2).abort_after(3);
    assert!(runner.run_recoverable(&program, &policy, &first).is_err());
    let n_first = RunCheckpoint::load(&path).unwrap().len();
    let second = Recovery::none().checkpoint_to(&path, 2).resume_from(&path).abort_after(3);
    assert!(runner.run_recoverable(&program, &policy, &second).is_err());
    let n_second = RunCheckpoint::load(&path).unwrap().len();
    assert!(n_second > n_first, "second leg must extend the checkpoint ({n_first}->{n_second})");

    let last = Recovery::none().checkpoint_to(&path, 2).resume_from(&path);
    let resumed = runner.run_recoverable(&program, &policy, &last).unwrap();
    assert_bits("mean", baseline.mean(), resumed.mean());
    assert_bits("half_width", baseline.half_width(), resumed.half_width());
    assert_eq!(baseline.processed(), resumed.processed());
}

#[test]
fn matched_resume_is_bit_identical_serial_and_parallel() {
    let base = MachineConfig::eight_way();
    let experiment = base.clone().with_mem_latency(200);
    let runner = MatchedRunner::new(library(), base, experiment);
    let program = bench().build();
    for sched in [SchedMode::DynamicChunk, SchedMode::StaticStride] {
        let policy = exhaustive(sched);
        let baseline = runner.run(&program, &policy).unwrap();
        for threads in [None, Some(1usize), Some(2), Some(4)] {
            let label = threads.map_or("serial".into(), |t| format!("x{t}"));
            let path = ckpt(&format!("matched-{sched:?}-{label}.ckpt"));
            let crash = Recovery::none().checkpoint_to(&path, 2).abort_after(4);
            let err = match threads {
                Some(t) => {
                    runner.run_parallel_recoverable(&program, &policy, t, &crash).unwrap_err()
                }
                None => runner.run_recoverable(&program, &policy, &crash).unwrap_err(),
            };
            assert!(matches!(err, CoreError::Interrupted { .. }), "{err}");
            let resume = Recovery::none().resume_from(&path);
            let resumed = match threads {
                Some(t) => runner.run_parallel_recoverable(&program, &policy, t, &resume).unwrap(),
                None => runner.run_recoverable(&program, &policy, &resume).unwrap(),
            };
            assert_bits("delta_mean", baseline.delta_mean(), resumed.delta_mean());
            assert_bits(
                "delta_half_width",
                baseline.delta_half_width(),
                resumed.delta_half_width(),
            );
            assert_bits("base mean", baseline.pair().base().mean(), resumed.pair().base().mean());
            assert_eq!(baseline.processed(), resumed.processed(), "{sched:?} {label}");
        }
    }
}

#[test]
fn sweep_resume_is_bit_identical_serial_and_parallel() {
    let m = MachineConfig::eight_way();
    let machines = vec![m.clone(), m.clone().with_mem_latency(120), m.with_mem_latency(200)];
    let runner = SweepRunner::new(library(), machines);
    let program = bench().build();
    for sched in [SchedMode::DynamicChunk, SchedMode::StaticStride] {
        let policy = exhaustive(sched);
        let baseline = runner.run(&program, &policy).unwrap();
        for threads in [None, Some(2usize), Some(4)] {
            let label = threads.map_or("serial".into(), |t| format!("x{t}"));
            let path = ckpt(&format!("sweep-{sched:?}-{label}.ckpt"));
            let crash = Recovery::none().checkpoint_to(&path, 2).abort_after(4);
            let err = match threads {
                Some(t) => {
                    runner.run_parallel_recoverable(&program, &policy, t, &crash).unwrap_err()
                }
                None => runner.run_recoverable(&program, &policy, &crash).unwrap_err(),
            };
            assert!(matches!(err, CoreError::Interrupted { .. }), "{err}");
            let resume = Recovery::none().resume_from(&path);
            let resumed = match threads {
                Some(t) => runner.run_parallel_recoverable(&program, &policy, t, &resume).unwrap(),
                None => runner.run_recoverable(&program, &policy, &resume).unwrap(),
            };
            let (a, b) = (baseline.estimates(), resumed.estimates());
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                assert_bits(&format!("machine {i} mean"), x.mean(), y.mean());
                assert_bits(&format!("machine {i} half_width"), x.half_width(), y.half_width());
                assert_eq!(x.processed(), y.processed(), "{sched:?} {label} machine {i}");
            }
        }
    }
}

// --- Identity: a checkpoint never resumes under a different run. ---

/// An online checkpoint produced by an interrupted run, for feeding to
/// mismatched resumes.
fn interrupted_online_ckpt() -> &'static PathBuf {
    static PATH: OnceLock<PathBuf> = OnceLock::new();
    PATH.get_or_init(|| {
        let path = ckpt("identity-source.ckpt");
        let runner = OnlineRunner::new(library(), MachineConfig::eight_way());
        let program = bench().build();
        let policy = exhaustive(SchedMode::DynamicChunk);
        let crash = Recovery::none().checkpoint_to(&path, 2).abort_after(4);
        assert!(runner.run_recoverable(&program, &policy, &crash).is_err());
        path
    })
}

#[test]
fn resume_with_different_policy_refuses() {
    let path = interrupted_online_ckpt();
    let runner = OnlineRunner::new(library(), MachineConfig::eight_way());
    let program = bench().build();
    let mut other = exhaustive(SchedMode::DynamicChunk);
    other.merge_stride = 5;
    let err =
        runner.run_recoverable(&program, &other, &Recovery::none().resume_from(path)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("refusing to resume"), "{msg}");
    assert!(!msg.contains('\n'), "one-line diagnostic: {msg}");
}

#[test]
fn resume_with_different_machine_refuses() {
    let path = interrupted_online_ckpt();
    let runner = OnlineRunner::new(library(), MachineConfig::eight_way().with_mem_latency(200));
    let program = bench().build();
    let policy = exhaustive(SchedMode::DynamicChunk);
    let err =
        runner.run_recoverable(&program, &policy, &Recovery::none().resume_from(path)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("refusing to resume"), "{msg}");
}

#[test]
fn resume_with_different_runner_kind_refuses() {
    let path = interrupted_online_ckpt();
    let base = MachineConfig::eight_way();
    let runner = MatchedRunner::new(library(), base.clone(), base.with_mem_latency(200));
    let program = bench().build();
    let policy = exhaustive(SchedMode::DynamicChunk);
    let err =
        runner.run_recoverable(&program, &policy, &Recovery::none().resume_from(path)).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("run kind") && msg.contains("refusing to resume"), "{msg}");
}

#[test]
fn resume_from_missing_or_corrupt_checkpoint_never_silently_restarts() {
    let runner = OnlineRunner::new(library(), MachineConfig::eight_way());
    let program = bench().build();
    let policy = exhaustive(SchedMode::DynamicChunk);

    let missing = ckpt("never-written.ckpt");
    let err = runner
        .run_recoverable(&program, &policy, &Recovery::none().resume_from(&missing))
        .unwrap_err();
    assert!(matches!(err, CoreError::Checkpoint { .. }), "{err}");

    let garbled = ckpt("garbled.ckpt");
    std::fs::write(&garbled, b"spectral-ckpt v1\nmeta nonsense\ncrc 00000000\n").unwrap();
    let err = runner
        .run_recoverable(&program, &policy, &Recovery::none().resume_from(&garbled))
        .unwrap_err();
    let msg = err.to_string();
    assert!(matches!(err, CoreError::Checkpoint { .. }), "{msg}");
    assert!(!msg.contains('\n'), "one-line diagnostic: {msg}");
}

// --- Corruption: mirror of the corrupt-container suite. ---

/// Bytes of a real checkpoint written by an interrupted parallel run.
fn ckpt_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let path = ckpt("proptest-source.ckpt");
        let runner = OnlineRunner::new(library(), MachineConfig::eight_way());
        let program = bench().build();
        let policy = exhaustive(SchedMode::DynamicChunk);
        let crash = Recovery::none().checkpoint_to(&path, 1).abort_after(6);
        assert!(runner.run_parallel_recoverable(&program, &policy, 2, &crash).is_err());
        std::fs::read(&path).expect("checkpoint bytes")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn truncated_checkpoint_is_typed_error_never_panic(cut in 0usize..(1usize << 12)) {
        let bytes = ckpt_bytes();
        let cut = cut % bytes.len(); // strictly shorter than the original
        let path = ckpt("proptest-trunc.ckpt");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        let msg = err.to_string();
        prop_assert!(matches!(err, CoreError::Checkpoint { .. }), "{}", msg);
        prop_assert!(!msg.contains('\n'), "one-line diagnostic: {}", msg);
    }

    #[test]
    fn bit_flipped_checkpoint_is_typed_error_never_panic(
        offset in 0usize..(1usize << 12),
        bit in 0u8..8,
    ) {
        let mut bytes = ckpt_bytes().to_vec();
        let offset = offset % bytes.len();
        bytes[offset] ^= 1 << bit;
        let path = ckpt("proptest-flip.ckpt");
        std::fs::write(&path, &bytes).unwrap();
        // CRC32 detects every single-bit payload flip; flips in the
        // trailer or final newline break the trailer parse instead.
        let err = RunCheckpoint::load(&path).unwrap_err();
        let msg = err.to_string();
        prop_assert!(matches!(err, CoreError::Checkpoint { .. }), "{}", msg);
        prop_assert!(!msg.contains('\n'), "one-line diagnostic: {}", msg);
    }
}
