//! The live-point: one self-contained, independently-simulatable
//! checkpoint.

use spectral_cache::{CacheConfig, CacheHierarchy, Csr, HierarchyConfig, Tlb, TlbConfig};
use spectral_stats::WindowSpec;
use spectral_uarch::{BpredConfig, BpredSnapshot, BranchPredictor};

use crate::error::CoreError;
use crate::livestate::{LiveState, StateScope};

/// The functionally-warmed microarchitectural payload of a live-point.
///
/// Caches and TLBs are stored as timestamped [`Csr`]s bounded by the
/// library's maximum geometry, so one payload serves every covered
/// configuration (the paper's *adaptable warmed state*). Branch
/// predictors cannot be adapted, so one [`BpredSnapshot`] is stored per
/// user-selected configuration (the paper's *multiple configurations*
/// approach).
#[derive(Debug, Clone)]
pub struct WarmPayload {
    /// L1 instruction-cache record (fed by the line-deduplicated fetch
    /// stream).
    pub l1i: Csr,
    /// L1 data-cache record (fed by the data reference stream).
    pub l1d: Csr,
    /// Unified L2 record (fed by the combined reference stream,
    /// Barr-style; see DESIGN.md for the filtered-vs-unfiltered
    /// discussion).
    pub l2: Csr,
    /// Instruction-TLB record (page granularity).
    pub itlb: Csr,
    /// Data-TLB record (page granularity).
    pub dtlb: Csr,
    /// One warm predictor snapshot per stored configuration.
    pub bpreds: Vec<BpredSnapshot>,
}

/// One live-point: everything needed to simulate one sample window in
/// isolation, for any machine configuration within the library bounds.
#[derive(Debug, Clone)]
pub struct LivePoint {
    /// Benchmark this live-point belongs to.
    pub benchmark: String,
    /// The window's position and extent in the committed stream.
    pub window: WindowSpec,
    /// How much warm state was retained at creation.
    pub scope: StateScope,
    /// Architectural live-state (registers + touched memory words).
    pub live_state: LiveState,
    /// Warm microarchitectural state.
    pub warm: WarmPayload,
    /// The maximum hierarchy geometry this live-point supports.
    pub max_hierarchy: HierarchyConfig,
}

impl LivePoint {
    /// Reconstruct a warm [`CacheHierarchy`] for `target`, which must be
    /// covered by the live-point's maximum geometry.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Cache`] when any target structure exceeds
    /// the recorded bounds.
    pub fn reconstruct_hierarchy(
        &self,
        target: &HierarchyConfig,
    ) -> Result<CacheHierarchy, CoreError> {
        let itlb = self.warm.itlb.reconstruct_cache(&tlb_as_cache(&target.itlb))?;
        let dtlb = self.warm.dtlb.reconstruct_cache(&tlb_as_cache(&target.dtlb))?;
        Ok(CacheHierarchy::from_parts(
            *target,
            self.warm.l1i.reconstruct_cache(&target.l1i)?,
            self.warm.l1d.reconstruct_cache(&target.l1d)?,
            self.warm.l2.reconstruct_cache(&target.l2)?,
            Tlb::from_warm_cache(target.itlb, itlb),
            Tlb::from_warm_cache(target.dtlb, dtlb),
        ))
    }

    /// Find and restore the stored predictor snapshot for `config`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BpredNotStored`] when no snapshot with the
    /// exact configuration exists (predictors are stored per
    /// configuration; they cannot be adapted like caches).
    pub fn predictor_for(&self, config: &BpredConfig) -> Result<BranchPredictor, CoreError> {
        self.warm
            .bpreds
            .iter()
            .find(|s| &s.config == config)
            .map(BranchPredictor::from_snapshot)
            .ok_or(CoreError::BpredNotStored)
    }

    /// Compute the encoded (uncompressed) size of each component — the
    /// paper's Figure 7 breakdown.
    pub fn size_breakdown(&self) -> SizeBreakdown {
        crate::encode::breakdown(self)
    }

    /// Encode to the DER wire format (uncompressed; libraries store the
    /// LZSS-compressed form).
    pub fn to_der(&self) -> Vec<u8> {
        crate::encode::encode_livepoint(self)
    }

    /// Decode from the DER wire format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Codec`] or [`CoreError::Cache`] on malformed
    /// input.
    pub fn from_der(data: &[u8]) -> Result<LivePoint, CoreError> {
        crate::encode::decode_livepoint(data)
    }
}

/// View a TLB geometry as the cache geometry its CSR was recorded under.
pub(crate) fn tlb_as_cache(t: &TlbConfig) -> CacheConfig {
    CacheConfig::new(t.entries() as u64 * t.page_bytes(), t.assoc(), t.page_bytes())
        .expect("valid TLB geometry maps to a valid cache geometry")
}

/// Per-component encoded sizes of a live-point (uncompressed DER), in
/// bytes — the quantities charted in the paper's Figure 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SizeBreakdown {
    /// Register files, window/meta header, and TLB records.
    pub regs_tlb: u64,
    /// Branch-predictor snapshots (all stored configurations).
    pub bpred: u64,
    /// L1I tag records.
    pub l1i_tags: u64,
    /// L1D tag records.
    pub l1d_tags: u64,
    /// L2 tag records.
    pub l2_tags: u64,
    /// Live-state memory words (addresses + values).
    pub memory_data: u64,
}

impl SizeBreakdown {
    /// Total uncompressed live-point size.
    pub fn total(&self) -> u64 {
        self.regs_tlb + self.bpred + self.l1i_tags + self.l1d_tags + self.l2_tags + self.memory_data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlb_as_cache_geometry() {
        let t = TlbConfig::new(256, 4, 4096).unwrap();
        let c = tlb_as_cache(&t);
        assert_eq!(c.num_sets(), 64);
        assert_eq!(c.assoc(), 4);
        assert_eq!(c.line_bytes(), 4096);
    }

    #[test]
    fn breakdown_total_sums() {
        let b = SizeBreakdown {
            regs_tlb: 1,
            bpred: 2,
            l1i_tags: 3,
            l1d_tags: 4,
            l2_tags: 5,
            memory_data: 6,
        };
        assert_eq!(b.total(), 21);
    }
}
