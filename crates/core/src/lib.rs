//! # spectral-core — simulation sampling with live-points
//!
//! The primary contribution of the reproduced paper (*Simulation
//! Sampling with Live-points*, ISPASS 2006): checkpoints that store the
//! bare minimum of functionally-warmed state needed to simulate one
//! pre-selected execution window accurately, plus the sampling framework
//! that exploits their independence.
//!
//! * [`LivePoint`] — one checkpoint: architectural registers, the
//!   **live-state** memory subset (only words the window actually
//!   reads), timestamped Cache Set Records for every cache/TLB bounded
//!   by a user-selected maximum geometry, and one branch-predictor
//!   snapshot per selected predictor configuration,
//! * [`LivePointLibrary`] — creation (one functional pass per
//!   benchmark, optionally streamed straight to disk), shuffling, and
//!   two container formats: the single-compressed-stream v1 file the
//!   paper recommends (§6.1) and the paged v2 file whose open reads
//!   only a footer index and whose point reads are O(1) positioned
//!   reads, with block-shared LZSS dictionaries and index-level merge
//!   ([`LivePointLibrary::merge_files`]),
//! * [`OnlineRunner`] — random-order processing with online confidence:
//!   results and their confidence are available *while the simulation
//!   runs*, and the run stops as soon as the target confidence is met
//!   (with the n ≥ 30 central-limit floor),
//! * [`MatchedRunner`] — matched-pair comparative experiments (§6.2):
//!   the same live-points measured under two machine configurations,
//!   building the confidence interval directly on the CPI delta,
//! * [`SweepRunner`] — decode-once design-space sweeps: each live-point
//!   is decompressed and decoded once, then simulated under every
//!   candidate machine, so per-config estimates are matched-pair
//!   comparable by construction,
//! * parallel processing over [`std::thread::scope`]d workers with
//!   sharded, low-contention accumulation — live-point independence
//!   makes this embarrassingly parallel. Work is distributed by a
//!   dynamic chunk-claiming scheduler with decode-ahead prefetch
//!   ([`ChunkCursor`], [`SchedMode`]); exhaustive parallel runs replay
//!   observations in index order and are bit-identical to serial runs.
//!
//! ## Example
//!
//! ```no_run
//! use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
//! use spectral_uarch::MachineConfig;
//! use spectral_workloads::by_name;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let bench = by_name("gzip-like").expect("in suite");
//! let program = bench.build();
//! let library = LivePointLibrary::create(&program, &CreationConfig::default())?;
//! let estimate = OnlineRunner::new(&library, MachineConfig::eight_way())
//!     .run(&program, &RunPolicy::default())?;
//! println!(
//!     "CPI {:.3} ± {:.3} after {} live-points",
//!     estimate.mean(),
//!     estimate.half_width(),
//!     estimate.processed()
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod creation;
mod encode;
mod error;
mod health;
mod library;
mod livepoint;
mod livestate;
mod matched;
mod plan;
mod pointcache;
mod resume;
mod runner;
mod sched;
mod stratified;
mod sweep;

pub use creation::{benchmark_length, CreationConfig, L2StreamPolicy};
pub use error::CoreError;
pub use library::{DecodeScratch, LibraryHeader, LivePointLibrary, V2WriteOptions};
pub use livepoint::{LivePoint, SizeBreakdown, WarmPayload};
pub use livestate::{collect_live_state, LiveState, StateScope};
pub use matched::{MatchedOutcome, MatchedRunner};
pub use plan::{plan_library, LibraryPlan};
pub use pointcache::{clear_decode_cache, decode_cache_capacity, set_decode_cache_capacity};
pub use resume::{
    config_fingerprint, policy_fingerprint, CheckpointSpec, Recovery, RunCheckpoint, RunKind,
    CHECKPOINT_MAGIC,
};
pub use runner::{simulate_live_point, Estimate, OnlineRunner, RunPolicy};
pub use sched::{ChunkCursor, SchedMode};
pub use stratified::{StratifiedEstimate, StratifiedRunner};
pub use sweep::{SweepOutcome, SweepRunner};
