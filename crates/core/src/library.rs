//! Live-point libraries: creation, shuffling, and on-disk containers.
//!
//! Two on-disk formats are supported (see `DESIGN.md` §library-format):
//!
//! * **v1** — the monolithic [`Container`](spectral_codec::Container)
//!   stream; loading parses every frame up front and holds all
//!   compressed records in memory ([`Backing::Memory`]).
//! * **v2** — the paged container ([`spectral_codec::paged`]); opening
//!   reads only the header and footer index, and each
//!   [`get`](LivePointLibrary::get) is one positioned read
//!   ([`Backing::Paged`]). v2 blocks may carry shared LZSS
//!   dictionaries that prime the compression window for every record
//!   in the block.
//!
//! [`LivePointLibrary::open`] dispatches on the version byte, so
//! callers never care which format a file uses.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufWriter;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

use rand::seq::SliceRandom;
use rand::SeedableRng;
use spectral_cache::HierarchyConfig;
use spectral_codec::{
    crc32, frame_header, lzss, paged, sniff_version, CodecError, ContainerReader, ContainerWriter,
    DerReader, DerWriter, FRAME_HEADER_LEN, V1_HEADER_LEN,
};
use spectral_isa::{Emulator, Program};
use spectral_stats::{SampleDesign, SystematicDesign, WindowSpec};
use spectral_telemetry::{Counter, Histogram, Stopwatch};

use crate::creation::{benchmark_length, CreationConfig, CreationWarmers, TouchedState};
use crate::encode::{decode_livepoint, encode_livepoint};
use crate::error::CoreError;
use crate::livepoint::{LivePoint, SizeBreakdown, WarmPayload};
use crate::livestate::{LiveStateCollector, StateScope};

// Library-creation metrics: where creation time goes (functional
// warming vs. state snapshot vs. DER encode vs. LZSS compress) and how
// big each record is before/after compression. All no-ops without the
// `telemetry` feature.
static TLM_WINDOWS: Counter = Counter::new("core.create.windows");
static TLM_WARM_NS: Counter = Counter::new("core.create.warm_ns");
static TLM_SNAPSHOT_NS: Counter = Counter::new("core.create.snapshot_ns");
static TLM_ENCODE_NS: Counter = Counter::new("core.create.der_encode_ns");
static TLM_COMPRESS_NS: Counter = Counter::new("core.create.compress_ns");
static TLM_DER_BYTES: Histogram = Histogram::new("core.create.record_der_bytes");
static TLM_RECORD_BYTES: Histogram = Histogram::new("core.create.record_bytes");

// Library-access metrics: open cost and per-record positioned reads on
// the paged backing, plus time spent building shared dictionaries.
static TLM_OPENS: Counter = Counter::new("core.lib.opens");
static TLM_OPEN_NS: Counter = Counter::new("core.lib.open_ns");
static TLM_PAGED_READS: Counter = Counter::new("core.lib.paged_reads");
static TLM_PAGED_READ_BYTES: Counter = Counter::new("core.lib.paged_read_bytes");
static TLM_DICT_BUILD_NS: Counter = Counter::new("core.lib.dict_build_ns");

/// DER-encode and LZSS-compress one live-point, feeding the per-record
/// telemetry — the single compression site for both the serial and the
/// pipelined creation paths. The caller keeps one [`CompressScratch`]
/// per thread so the match-finder tables are allocated once, not per
/// record.
///
/// [`CompressScratch`]: lzss::CompressScratch
fn compress_record(scratch: &mut lzss::CompressScratch, lp: &LivePoint) -> Vec<u8> {
    let sw = Stopwatch::start();
    let der = encode_livepoint(lp);
    TLM_ENCODE_NS.add(sw.ns());
    TLM_DER_BYTES.record(der.len() as u64);
    let sw = Stopwatch::start();
    let bytes = lzss::compress_with(scratch, &der);
    TLM_COMPRESS_NS.add(sw.ns());
    TLM_RECORD_BYTES.record(bytes.len() as u64);
    bytes
}

/// Reusable decode buffers for [`LivePointLibrary::get_with`]: holds
/// the decompressed DER image (and, for paged libraries, the compressed
/// record read from disk) between decodes so steady-state point
/// processing performs no decompression-side heap allocation. Keep one
/// per runner thread.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    der: Vec<u8>,
    comp: Vec<u8>,
}

impl DecodeScratch {
    /// Create empty scratch; the buffers grow to the largest record
    /// decoded through them and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Where a record's bytes are read from.
#[derive(Debug)]
enum Source {
    /// An open file; records are fetched with positioned reads.
    File(File),
    /// An in-memory image (e.g. [`LivePointLibrary::from_bytes`]).
    Bytes(Arc<Vec<u8>>),
}

impl Source {
    /// Read exactly `buf.len()` bytes at absolute `offset`.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> Result<(), CoreError> {
        match self {
            Source::File(f) => {
                #[cfg(unix)]
                {
                    use std::os::unix::fs::FileExt;
                    f.read_exact_at(buf, offset)?;
                }
                #[cfg(not(unix))]
                {
                    let _ = (f, offset);
                    unimplemented!("paged libraries require positioned reads (unix)");
                }
            }
            Source::Bytes(data) => {
                let start = usize::try_from(offset).map_err(|_| CodecError::Truncated)?;
                let end = start
                    .checked_add(buf.len())
                    .filter(|&e| e <= data.len())
                    .ok_or(CodecError::Truncated)?;
                buf.copy_from_slice(&data[start..end]);
            }
        }
        Ok(())
    }
}

/// An opened v2 container: the source plus its parsed footer index and
/// a lazily-populated per-block cache of decompressed dictionaries.
/// Shared (`Arc`) so cloning a paged library clones no file state.
#[derive(Debug)]
struct PagedSource {
    source: Source,
    blocks: Vec<paged::BlockEntry>,
    records: Vec<paged::RecordEntry>,
    /// Trailer content hash (CRC32 of record bodies in stored order).
    stored_hash: u32,
    /// Sum of record body lengths from the footer index.
    record_bytes: u64,
    file_bytes: u64,
    /// Decompressed shared dictionaries, filled on first use per block.
    dicts: Vec<Mutex<Option<Arc<Vec<u8>>>>>,
}

impl PagedSource {
    /// Positioned read + CRC check of stored record `stored` into `buf`.
    fn read_record(&self, stored: usize, buf: &mut Vec<u8>) -> Result<(), CoreError> {
        let e = &self.records[stored];
        buf.resize(e.len as usize, 0);
        self.source.read_exact_at(buf, e.offset)?;
        if crc32::checksum(buf) != e.crc {
            return Err(CodecError::CrcMismatch { frame: stored }.into());
        }
        TLM_PAGED_READS.inc();
        TLM_PAGED_READ_BYTES.add(e.len as u64);
        Ok(())
    }

    /// Positioned read + CRC check of block `block`'s compressed
    /// dictionary bytes (which may be raw-copied into a merged file
    /// without decompression).
    fn read_dict_raw(&self, block: usize, buf: &mut Vec<u8>) -> Result<(), CoreError> {
        let b = &self.blocks[block];
        buf.resize(b.dict_len as usize, 0);
        self.source.read_exact_at(buf, b.dict_offset)?;
        if crc32::checksum(buf) != b.dict_crc {
            return Err(CodecError::CrcMismatch { frame: block }.into());
        }
        Ok(())
    }

    /// The decompressed shared dictionary for `block`, or `None` for a
    /// dictionary-less block. Decompressed once and cached; concurrent
    /// first uses may race benignly (last write wins, values identical).
    fn dict(&self, block: usize) -> Result<Option<Arc<Vec<u8>>>, CoreError> {
        if self.blocks[block].dict_len == 0 {
            return Ok(None);
        }
        if let Some(d) = self.dicts[block].lock().expect("dict lock").as_ref() {
            return Ok(Some(d.clone()));
        }
        let mut raw = Vec::new();
        self.read_dict_raw(block, &mut raw)?;
        let dict = Arc::new(lzss::decompress(&raw)?);
        *self.dicts[block].lock().expect("dict lock") = Some(dict.clone());
        Ok(Some(dict))
    }
}

/// The two record backings: all compressed records resident (v1 load,
/// fresh creation) or a footer-indexed file read on demand (v2 open).
#[derive(Debug, Clone)]
enum Backing {
    /// LZSS-compressed DER live-points, in shuffled processing order.
    Memory(Vec<Vec<u8>>),
    Paged(Arc<PagedSource>),
}

/// Knobs for writing a v2 paged container
/// ([`LivePointLibrary::save_v2`]).
#[derive(Debug, Clone)]
pub struct V2WriteOptions {
    /// Records per dictionary block.
    pub block_points: usize,
    /// Whether to build block-shared LZSS dictionaries. Without
    /// dictionaries records are byte-identical to their v1 bodies, so
    /// conversion is a pure re-framing (no decompression) and the v2
    /// content hash equals the v1 content hash.
    pub dict: bool,
    /// Maximum dictionary size in bytes (decompressed).
    pub dict_cap: usize,
    /// Records sampled (evenly spaced) per block to seed the dictionary.
    pub dict_samples: usize,
}

impl Default for V2WriteOptions {
    fn default() -> Self {
        V2WriteOptions { block_points: 64, dict: true, dict_cap: 16 * 1024, dict_samples: 4 }
    }
}

/// Metadata from a metadata-only open ([`LivePointLibrary::open_header`]):
/// everything the experiment binaries print about a library without
/// decompressing a single record.
#[derive(Debug, Clone)]
pub struct LibraryHeader {
    /// Container format version (1 or 2).
    pub format_version: u16,
    /// The benchmark the library samples.
    pub benchmark: String,
    /// Warm-state scope the library was created with.
    pub scope: StateScope,
    /// Maximum hierarchy geometry the library supports.
    pub max_hierarchy: HierarchyConfig,
    /// Number of live-points.
    pub points: u64,
    /// Dictionary blocks (0 for v1).
    pub blocks: u64,
    /// Sum of compressed record body lengths.
    pub total_compressed_bytes: u64,
    /// Total container file length.
    pub file_bytes: u64,
    /// Stored content hash (v2 trailer); `None` for v1, where computing
    /// it would require reading every record body.
    pub content_hash: Option<u32>,
}

/// A benchmark's live-point library: independently-loadable compressed
/// records, pre-shuffled into random order (paper §6.1: "we recommend
/// shuffling live-points on disk, prior to simulation").
#[derive(Debug, Clone)]
pub struct LivePointLibrary {
    benchmark: String,
    scope: StateScope,
    max_hierarchy: HierarchyConfig,
    backing: Backing,
    /// Paged processing order: processing index `i` reads stored record
    /// `order[i]`. Empty for the memory backing (which shuffles the
    /// record vector itself).
    order: Vec<u32>,
    /// Cached [`content_hash`](Self::content_hash); reset by any
    /// reordering mutation (shuffle, merge).
    cache_hash: OnceLock<u32>,
}

impl LivePointLibrary {
    fn from_records(
        benchmark: String,
        scope: StateScope,
        max_hierarchy: HierarchyConfig,
        records: Vec<Vec<u8>>,
    ) -> Self {
        LivePointLibrary {
            benchmark,
            scope,
            max_hierarchy,
            backing: Backing::Memory(records),
            order: Vec::new(),
            cache_hash: OnceLock::new(),
        }
    }

    /// Create a library with the paper's periodic sample design: one
    /// functional pass to measure the benchmark, one creation pass to
    /// collect the points, then a seeded shuffle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] when the benchmark
    /// cannot host a single window.
    pub fn create(program: &Program, cfg: &CreationConfig) -> Result<Self, CoreError> {
        Self::create_parallel(program, cfg, 1)
    }

    /// Create a library with the paper's periodic sample design, using a
    /// pipelined creation pass: the inherently sequential
    /// functional-warming walk stays on the calling thread while
    /// `threads` workers DER-encode and LZSS-compress each window's
    /// snapshot concurrently. Record order — and therefore the library's
    /// bytes — is identical to the serial pass for the same seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] when the benchmark
    /// cannot host a single window.
    pub fn create_parallel(
        program: &Program,
        cfg: &CreationConfig,
        threads: usize,
    ) -> Result<Self, CoreError> {
        let n = benchmark_length(program);
        let design = SystematicDesign::new(cfg.unit_len, cfg.warm_len);
        let windows = design.windows(n, cfg.sample_size, cfg.seed);
        Self::create_with_windows_parallel(program, cfg, &windows, threads)
    }

    /// Create a library for caller-chosen windows (sorted,
    /// non-overlapping).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] for an empty window list.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is unsorted.
    pub fn create_with_windows(
        program: &Program,
        cfg: &CreationConfig,
        windows: &[WindowSpec],
    ) -> Result<Self, CoreError> {
        Self::create_with_windows_parallel(program, cfg, windows, 1)
    }

    /// [`create_with_windows`](Self::create_with_windows) with the
    /// encode/compress stage fanned out over `threads` workers (see
    /// [`create_parallel`](Self::create_parallel)); `threads <= 1` runs
    /// fully inline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] for an empty window list.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is unsorted.
    pub fn create_with_windows_parallel(
        program: &Program,
        cfg: &CreationConfig,
        windows: &[WindowSpec],
        threads: usize,
    ) -> Result<Self, CoreError> {
        if windows.is_empty() {
            return Err(CoreError::BenchmarkTooShort);
        }
        assert!(
            windows.windows(2).all(|w| w[0].end() <= w[1].detail_start),
            "windows must be sorted and non-overlapping"
        );

        let _span = spectral_telemetry::span("create.library");
        let records = if threads <= 1 {
            let mut records = Vec::with_capacity(windows.len());
            let mut scratch = lzss::CompressScratch::new();
            walk_windows(program, cfg, windows, |_, lp| {
                records.push(compress_record(&mut scratch, &lp));
            });
            records
        } else {
            encode_pipelined(program, cfg, windows, threads)
        };

        if records.is_empty() {
            return Err(CoreError::BenchmarkTooShort);
        }
        let mut lib =
            Self::from_records(program.name().to_owned(), cfg.scope, cfg.max_hierarchy, records);
        lib.shuffle(cfg.seed ^ 0x0F1E_2D3C);
        Ok(lib)
    }

    /// Create a library directly on disk as a v2 paged container:
    /// records stream to a spool file as the warming walk produces them
    /// (nothing is held in memory), then a stitch pass raw-copies the
    /// record bodies into shuffled order and writes the footer index —
    /// for a dictionary-less target this performs **zero**
    /// decompression. The processing order, decoded points, and (for
    /// `dict: false`) the content hash are identical to
    /// [`create_parallel`](Self::create_parallel) with the same seed.
    ///
    /// Returns the finished library, opened paged from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] when no window fits,
    /// plus any I/O fault (the spool file is removed on all paths).
    pub fn create_parallel_to_path(
        program: &Program,
        cfg: &CreationConfig,
        threads: usize,
        path: impl AsRef<Path>,
        opts: &V2WriteOptions,
    ) -> Result<Self, CoreError> {
        let n = benchmark_length(program);
        let design = SystematicDesign::new(cfg.unit_len, cfg.warm_len);
        let windows = design.windows(n, cfg.sample_size, cfg.seed);
        Self::create_with_windows_to_path(program, cfg, &windows, threads, path, opts)
    }

    /// [`create_parallel_to_path`](Self::create_parallel_to_path) for
    /// caller-chosen windows.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] for an empty window
    /// list, plus any I/O fault.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is unsorted.
    pub fn create_with_windows_to_path(
        program: &Program,
        cfg: &CreationConfig,
        windows: &[WindowSpec],
        threads: usize,
        path: impl AsRef<Path>,
        opts: &V2WriteOptions,
    ) -> Result<Self, CoreError> {
        if windows.is_empty() {
            return Err(CoreError::BenchmarkTooShort);
        }
        assert!(
            windows.windows(2).all(|w| w[0].end() <= w[1].detail_start),
            "windows must be sorted and non-overlapping"
        );
        let path = path.as_ref();
        let mut spool_name = path.as_os_str().to_owned();
        spool_name.push(".spool");
        let spool = std::path::PathBuf::from(spool_name);

        let _span = spectral_telemetry::span("create.library");
        let result = Self::spool_and_stitch(program, cfg, windows, threads, path, &spool, opts);
        std::fs::remove_file(&spool).ok();
        result
    }

    /// Phase 1 (spool): stream records in window order into a
    /// dictionary-less v2 file. Phase 2 (stitch): open the spool paged,
    /// shuffle, and re-save to `path` — a raw copy for dictionary-less
    /// targets.
    fn spool_and_stitch(
        program: &Program,
        cfg: &CreationConfig,
        windows: &[WindowSpec],
        threads: usize,
        path: &Path,
        spool: &Path,
        opts: &V2WriteOptions,
    ) -> Result<Self, CoreError> {
        let meta = encode_meta_der(program.name(), cfg.scope, &cfg.max_hierarchy);
        let file = File::create(spool)?;
        let mut w = paged::PagedWriter::new(BufWriter::new(file), &meta)?;
        let mut io_err: Option<std::io::Error> = None;
        if threads <= 1 {
            let mut scratch = lzss::CompressScratch::new();
            walk_windows(program, cfg, windows, |_, lp| {
                if io_err.is_some() {
                    return;
                }
                let bytes = compress_record(&mut scratch, &lp);
                if let Err(e) = w.push_record(&bytes) {
                    io_err = Some(e);
                }
            });
        } else {
            io_err = spool_pipelined(program, cfg, windows, threads, &mut w);
        }
        if let Some(e) = io_err {
            return Err(e.into());
        }
        if w.is_empty() {
            return Err(CoreError::BenchmarkTooShort);
        }
        w.finish()?;

        let mut spooled = Self::open(spool)?;
        spooled.shuffle(cfg.seed ^ 0x0F1E_2D3C);
        spooled.save_v2(path, opts)?;
        drop(spooled);
        Self::open(path)
    }

    /// The benchmark this library samples.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// The warm-state scope the library was created with.
    pub fn scope(&self) -> StateScope {
        self.scope
    }

    /// The maximum hierarchy geometry the library supports.
    pub fn max_hierarchy(&self) -> &HierarchyConfig {
        &self.max_hierarchy
    }

    /// The container format backing this library: 1 when all records
    /// are resident in memory, 2 when reads go through a paged file.
    pub fn format_version(&self) -> u16 {
        match &self.backing {
            Backing::Memory(_) => 1,
            Backing::Paged(_) => paged::V2_VERSION,
        }
    }

    /// Number of live-points.
    pub fn len(&self) -> usize {
        match &self.backing {
            Backing::Memory(records) => records.len(),
            Backing::Paged(_) => self.order.len(),
        }
    }

    /// Whether the library holds no live-points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode live-point `index` (decompression + DER decode — the cost
    /// the paper charts as "checkpoint processing time" in Fig 8). On a
    /// paged library this is one positioned read plus the decode.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfRange`] or a codec/I-O fault.
    pub fn get(&self, index: usize) -> Result<LivePoint, CoreError> {
        self.get_with(&mut DecodeScratch::new(), index)
    }

    /// Decode live-point `index` reusing `scratch`'s buffers — the
    /// hot-path variant of [`get`](Self::get) used by the runners so
    /// repeated decodes allocate nothing for decompression.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfRange`] or a codec/I-O fault.
    pub fn get_with(
        &self,
        scratch: &mut DecodeScratch,
        index: usize,
    ) -> Result<LivePoint, CoreError> {
        self.decompress_record_into(index, scratch)?;
        decode_livepoint(&scratch.der)
    }

    /// Fill `scratch.der` with the decompressed DER image of record
    /// `index` (processing order), reading through the paged backing
    /// and its shared dictionary when needed.
    fn decompress_record_into(
        &self,
        index: usize,
        scratch: &mut DecodeScratch,
    ) -> Result<(), CoreError> {
        match &self.backing {
            Backing::Memory(records) => {
                let rec = records
                    .get(index)
                    .ok_or(CoreError::IndexOutOfRange { index, len: records.len() })?;
                lzss::decompress_into(rec, &mut scratch.der)?;
            }
            Backing::Paged(p) => {
                let stored = *self
                    .order
                    .get(index)
                    .ok_or(CoreError::IndexOutOfRange { index, len: self.order.len() })?
                    as usize;
                p.read_record(stored, &mut scratch.comp)?;
                match p.dict(p.records[stored].block as usize)? {
                    None => lzss::decompress_into(&scratch.comp, &mut scratch.der)?,
                    Some(dict) => {
                        lzss::decompress_into_with_dict(&dict, &scratch.comp, &mut scratch.der)?;
                    }
                }
            }
        }
        Ok(())
    }

    /// Iterate decoded live-points in (shuffled) processing order.
    ///
    /// ```no_run
    /// # use spectral_core::{CreationConfig, LivePointLibrary};
    /// # fn demo(library: &LivePointLibrary) -> Result<(), spectral_core::CoreError> {
    /// for lp in library.iter() {
    ///     let lp = lp?;
    ///     println!("window at {}", lp.window.measure_start);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter { library: self, index: 0, scratch: DecodeScratch::new() }
    }

    /// Compressed size of record `index` in bytes. For a paged library
    /// this comes straight from the footer index — no read, no
    /// decompression.
    pub fn record_bytes(&self, index: usize) -> Option<usize> {
        match &self.backing {
            Backing::Memory(records) => records.get(index).map(Vec::len),
            Backing::Paged(p) => {
                let stored = *self.order.get(index)? as usize;
                Some(p.records[stored].len as usize)
            }
        }
    }

    /// Total compressed library size in bytes (the paper's "12 GB for
    /// SPEC2K" quantity, at this repo's scale). For a paged library this
    /// is the footer-index sum — no reads.
    pub fn total_compressed_bytes(&self) -> u64 {
        match &self.backing {
            Backing::Memory(records) => records.iter().map(|r| r.len() as u64).sum(),
            Backing::Paged(p) => p.record_bytes,
        }
    }

    /// CRC32 content hash over the compressed records in processing
    /// order — the library identity stamped into run manifests (two
    /// libraries with equal hashes process identical points in
    /// identical order). Computed once and cached; any reordering
    /// mutation invalidates the cache.
    ///
    /// A paged library in its stored order returns the trailer hash
    /// (for dictionary-less files this equals the v1 in-memory hash).
    /// A *re-shuffled* paged library hashes the footer's per-record
    /// CRCs in processing order instead — still a deterministic
    /// identity, without touching record bodies.
    pub fn content_hash(&self) -> u32 {
        *self.cache_hash.get_or_init(|| match &self.backing {
            Backing::Memory(records) => {
                let mut h = crc32::Hasher::new();
                for rec in records {
                    h.update(rec);
                }
                h.finalize()
            }
            Backing::Paged(p) => {
                if self.order.iter().enumerate().all(|(i, &s)| i as u32 == s) {
                    p.stored_hash
                } else {
                    let mut h = crc32::Hasher::new();
                    for &s in &self.order {
                        h.update(&p.records[s as usize].crc.to_le_bytes());
                    }
                    h.finalize()
                }
            }
        })
    }

    /// Mean compressed bytes per live-point.
    pub fn mean_point_bytes(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.total_compressed_bytes() / self.len() as u64
        }
    }

    /// Mean uncompressed (DER) bytes per live-point, with the Figure 7
    /// component breakdown averaged over up to `sample` points.
    ///
    /// # Errors
    ///
    /// Propagates decode faults.
    pub fn mean_breakdown(&self, sample: usize) -> Result<SizeBreakdown, CoreError> {
        let n = sample.min(self.len()).max(1);
        let mut acc = SizeBreakdown::default();
        for i in 0..n {
            let b = self.get(i)?.size_breakdown();
            acc.regs_tlb += b.regs_tlb;
            acc.bpred += b.bpred;
            acc.l1i_tags += b.l1i_tags;
            acc.l1d_tags += b.l1d_tags;
            acc.l2_tags += b.l2_tags;
            acc.memory_data += b.memory_data;
        }
        let n = n as u64;
        Ok(SizeBreakdown {
            regs_tlb: acc.regs_tlb / n,
            bpred: acc.bpred / n,
            l1i_tags: acc.l1i_tags / n,
            l1d_tags: acc.l1d_tags / n,
            l2_tags: acc.l2_tags / n,
            memory_data: acc.memory_data / n,
        })
    }

    /// Re-shuffle the processing order (deterministic in `seed`). On a
    /// paged library only the in-memory order indirection moves — the
    /// file is untouched.
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        match &mut self.backing {
            Backing::Memory(records) => records.shuffle(&mut rng),
            // Same length + same RNG stream ⇒ the same permutation the
            // memory backing would apply, so streamed and in-memory
            // creation agree point for point.
            Backing::Paged(_) => self.order.shuffle(&mut rng),
        }
        self.cache_hash = OnceLock::new();
    }

    /// The library metadata payload (benchmark, scope, hierarchy
    /// bounds) as DER — the v1 meta record and the v2 metadata frame.
    fn meta_der(&self) -> Vec<u8> {
        encode_meta_der(&self.benchmark, self.scope, &self.max_hierarchy)
    }

    /// Visit the plain-LZSS bytes of every record in processing order.
    /// Memory records are already plain; paged dictionary-less records
    /// are raw-copied; paged dictionary records are decompressed and
    /// deterministically recompressed, so a v1 → v2-with-dictionaries
    /// → v1 round trip is byte-identical.
    fn for_each_plain_record(
        &self,
        mut f: impl FnMut(&[u8]) -> Result<(), CoreError>,
    ) -> Result<(), CoreError> {
        match &self.backing {
            Backing::Memory(records) => {
                for rec in records {
                    f(rec)?;
                }
            }
            Backing::Paged(p) => {
                let mut comp = Vec::new();
                let mut der = Vec::new();
                let mut scratch = lzss::CompressScratch::new();
                for &stored in &self.order {
                    let stored = stored as usize;
                    p.read_record(stored, &mut comp)?;
                    match p.dict(p.records[stored].block as usize)? {
                        None => f(&comp)?,
                        Some(dict) => {
                            lzss::decompress_into_with_dict(&dict, &comp, &mut der)?;
                            f(&lzss::compress_with(&mut scratch, &der))?;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Serialize the library to v1 container bytes (meta record followed
    /// by the compressed live-points).
    ///
    /// # Errors
    ///
    /// Propagates read faults from a paged backing (in-memory libraries
    /// cannot fail).
    pub fn to_bytes(&self) -> Result<Vec<u8>, CoreError> {
        let mut writer = ContainerWriter::new();
        writer.push(&self.meta_der());
        self.for_each_plain_record(|rec| {
            writer.push_compressed(rec);
            Ok(())
        })?;
        Ok(writer.finish())
    }

    /// Parse a library from container bytes of either format. v2 bytes
    /// are served paged from the in-memory image (no up-front record
    /// parsing).
    ///
    /// # Errors
    ///
    /// Propagates container/DER faults; an empty v1 container is
    /// [`CoreError::EmptyLibrary`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, CoreError> {
        if sniff_version(data)? == paged::V2_VERSION {
            return Self::open_paged(Source::Bytes(Arc::new(data.to_vec())), data.len() as u64);
        }
        let mut reader = ContainerReader::new(data)?;
        let meta_bytes = reader.next_record()?.ok_or(CoreError::EmptyLibrary)?;
        let (benchmark, scope, max_hierarchy) = parse_meta_der(&meta_bytes)?;
        let mut records = Vec::new();
        while let Some(rec) = reader.next_record_compressed()? {
            records.push(rec);
        }
        Ok(Self::from_records(benchmark, scope, max_hierarchy, records))
    }

    /// Save to a file in v1 format. The write is atomic — temp file +
    /// fsync + rename (fault site `library.save`) — so a crash leaves
    /// the previous container or the new one, never a torn file.
    ///
    /// # Example
    ///
    /// Build a small library, save it, and reopen it:
    ///
    /// ```
    /// use spectral_core::{CreationConfig, LivePointLibrary};
    /// use spectral_uarch::MachineConfig;
    ///
    /// let program = spectral_workloads::tiny().build();
    /// let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(4);
    /// let library = LivePointLibrary::create(&program, &cfg)?;
    ///
    /// let path = std::env::temp_dir().join(format!("doc-save-{}.slp", std::process::id()));
    /// library.save(&path)?;
    /// let reopened = LivePointLibrary::open(&path)?;
    /// assert_eq!(reopened.len(), library.len());
    /// assert_eq!(reopened.benchmark(), library.benchmark());
    /// std::fs::remove_file(&path).ok();
    /// # Ok::<(), spectral_core::CoreError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        let bytes = self.to_bytes()?;
        spectral_faultd::retry("library.save", || {
            spectral_faultd::write_atomic("library.save", path.as_ref(), &bytes)
        })?;
        Ok(())
    }

    /// Save to a file as a v2 paged container, returning the writer's
    /// size summary. Without dictionaries this is a pure re-framing of
    /// the plain-compressed records (no decompression for in-memory or
    /// dictionary-less paged sources); with dictionaries each block of
    /// [`V2WriteOptions::block_points`] records is recompressed against
    /// a dictionary sampled from the block's own records.
    ///
    /// The container streams into a temp sibling and is fsynced and
    /// renamed into place only after a complete, CRC-consistent write
    /// (fault site `library.v2.save`), so a crash mid-save never leaves
    /// a torn container at `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O and codec faults.
    pub fn save_v2(
        &self,
        path: impl AsRef<Path>,
        opts: &V2WriteOptions,
    ) -> Result<paged::V2Summary, CoreError> {
        let path = path.as_ref();
        spectral_faultd::probe("library.v2.save")?;
        let tmp = tmp_sibling(path);
        match self.save_v2_into(&tmp, opts) {
            Ok(summary) => {
                commit_tmp("library.v2.save", &tmp, path)?;
                Ok(summary)
            }
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                Err(e)
            }
        }
    }

    /// The streaming body of [`save_v2`](Self::save_v2), writing the
    /// container to its (non-atomic) destination.
    fn save_v2_into(
        &self,
        path: &Path,
        opts: &V2WriteOptions,
    ) -> Result<paged::V2Summary, CoreError> {
        let file = File::create(path)?;
        let mut w = paged::PagedWriter::new(BufWriter::new(file), &self.meta_der())?;
        if !opts.dict {
            self.for_each_plain_record(|rec| {
                w.push_record(rec)?;
                Ok(())
            })?;
        } else {
            let n = self.len();
            let block_points = opts.block_points.max(1);
            let mut dec = DecodeScratch::new();
            let mut scratch = lzss::CompressScratch::new();
            let mut start = 0;
            while start < n {
                let end = (start + block_points).min(n);
                let sw = Stopwatch::start();
                let dict = self.sample_dict(start, end, opts, &mut dec)?;
                let dict_comp = if dict.is_empty() { Vec::new() } else { lzss::compress(&dict) };
                TLM_DICT_BUILD_NS.add(sw.ns());
                w.begin_block(&dict_comp)?;
                for i in start..end {
                    self.decompress_record_into(i, &mut dec)?;
                    w.push_record(&lzss::compress_with_dict(&mut scratch, &dict, &dec.der))?;
                }
                start = end;
            }
        }
        Ok(w.finish()?)
    }

    /// Build a shared dictionary for records `[start, end)` by
    /// concatenating prefixes of up to [`V2WriteOptions::dict_samples`]
    /// evenly-spaced records, capped at [`V2WriteOptions::dict_cap`]
    /// bytes. Live-point DER images within a benchmark share heavy
    /// structure (same hierarchy geometry, overlapping warm sets), so
    /// even a small sample primes the LZSS window well.
    fn sample_dict(
        &self,
        start: usize,
        end: usize,
        opts: &V2WriteOptions,
        dec: &mut DecodeScratch,
    ) -> Result<Vec<u8>, CoreError> {
        let span = end - start;
        if span == 0 || opts.dict_cap == 0 || opts.dict_samples == 0 {
            return Ok(Vec::new());
        }
        let samples = opts.dict_samples.min(span);
        let per = (opts.dict_cap / samples).max(1);
        let mut dict = Vec::with_capacity(opts.dict_cap.min(per * samples));
        for k in 0..samples {
            let i = start + k * span / samples;
            self.decompress_record_into(i, dec)?;
            dict.extend_from_slice(&dec.der[..per.min(dec.der.len())]);
            if dict.len() >= opts.dict_cap {
                dict.truncate(opts.dict_cap);
                break;
            }
        }
        Ok(dict)
    }

    /// Open a library file of either format. v1 files load fully (all
    /// records resident); v2 files open paged — only the header,
    /// metadata, and footer index are read, and records are fetched
    /// with positioned reads on demand.
    ///
    /// # Errors
    ///
    /// Propagates I/O and container faults.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        let path = path.as_ref();
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 6 {
            return Err(CodecError::Truncated.into());
        }
        let source = Source::File(file);
        let mut prefix = [0u8; 6];
        source.read_exact_at(&mut prefix, 0)?;
        match sniff_version(&prefix)? {
            1 => Self::from_bytes(&std::fs::read(path)?),
            paged::V2_VERSION => Self::open_paged(source, file_len),
            v => Err(CodecError::UnsupportedVersion { found: v }.into()),
        }
    }

    /// Open a v2 container over `source`: header + metadata + footer
    /// index only; no record is read or decompressed.
    fn open_paged(source: Source, file_len: u64) -> Result<Self, CoreError> {
        let sw = Stopwatch::start();
        if file_len < (paged::V2_HEADER_LEN + paged::V2_TRAILER_LEN) as u64 {
            return Err(CodecError::Truncated.into());
        }
        let mut prefix = [0u8; paged::V2_HEADER_LEN];
        source.read_exact_at(&mut prefix, 0)?;
        let header = paged::parse_v2_header(&prefix)?;
        let meta_end = paged::V2_HEADER_LEN as u64 + u64::from(header.meta_len);
        if meta_end + paged::V2_TRAILER_LEN as u64 > file_len {
            return Err(CodecError::Truncated.into());
        }
        let mut meta_bytes = vec![0u8; header.meta_len as usize];
        source.read_exact_at(&mut meta_bytes, paged::V2_HEADER_LEN as u64)?;
        let meta_der = paged::decode_v2_meta(&header, &meta_bytes)?;
        let (benchmark, scope, max_hierarchy) = parse_meta_der(&meta_der)?;
        let mut tail = [0u8; paged::V2_TRAILER_LEN];
        source.read_exact_at(&mut tail, file_len - paged::V2_TRAILER_LEN as u64)?;
        let trailer = paged::parse_v2_trailer(&tail, file_len)?;
        if trailer.footer_offset < meta_end {
            return Err(CodecError::BadFooter.into());
        }
        let mut footer = vec![0u8; trailer.footer_len as usize];
        source.read_exact_at(&mut footer, trailer.footer_offset)?;
        let (blocks, records) = paged::parse_v2_footer(&footer, &trailer, meta_end)?;
        let record_bytes = records.iter().map(|r| u64::from(r.len)).sum();
        let dicts = blocks.iter().map(|_| Mutex::new(None)).collect();
        let order = (0..records.len() as u32).collect();
        let lib = LivePointLibrary {
            benchmark,
            scope,
            max_hierarchy,
            backing: Backing::Paged(Arc::new(PagedSource {
                source,
                blocks,
                records,
                stored_hash: trailer.content_hash,
                record_bytes,
                file_bytes: file_len,
                dicts,
            })),
            order,
            cache_hash: OnceLock::new(),
        };
        TLM_OPEN_NS.add(sw.ns());
        TLM_OPENS.inc();
        Ok(lib)
    }

    /// Metadata-only open: benchmark, scope, hierarchy bounds, point
    /// count, and size totals without decompressing a single record.
    /// v2 reads the header and footer; v1 reads the meta record and
    /// walks frame headers by seeking over record bodies.
    ///
    /// # Errors
    ///
    /// Propagates I/O and container faults.
    pub fn open_header(path: impl AsRef<Path>) -> Result<LibraryHeader, CoreError> {
        let file = File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < V1_HEADER_LEN as u64 {
            return Err(CodecError::Truncated.into());
        }
        let source = Source::File(file);
        let mut h = [0u8; V1_HEADER_LEN];
        source.read_exact_at(&mut h, 0)?;
        match sniff_version(&h)? {
            1 => Self::open_header_v1(&source, &h, file_len),
            paged::V2_VERSION => {
                let lib = Self::open_paged(source, file_len)?;
                let Backing::Paged(p) = &lib.backing else {
                    unreachable!("open_paged always yields a paged backing");
                };
                Ok(LibraryHeader {
                    format_version: paged::V2_VERSION,
                    benchmark: lib.benchmark.clone(),
                    scope: lib.scope,
                    max_hierarchy: lib.max_hierarchy,
                    points: p.records.len() as u64,
                    blocks: p.blocks.len() as u64,
                    total_compressed_bytes: p.record_bytes,
                    file_bytes: p.file_bytes,
                    content_hash: Some(p.stored_hash),
                })
            }
            v => Err(CodecError::UnsupportedVersion { found: v }.into()),
        }
    }

    /// v1 metadata-only open: parse the meta record, then walk the
    /// remaining frame headers (8 bytes each) accumulating sizes —
    /// record bodies are skipped, never read.
    fn open_header_v1(
        source: &Source,
        header: &[u8; V1_HEADER_LEN],
        file_len: u64,
    ) -> Result<LibraryHeader, CoreError> {
        let count = spectral_codec::parse_v1_header(header)?;
        if count == 0 {
            return Err(CoreError::EmptyLibrary);
        }
        let mut pos = V1_HEADER_LEN as u64;
        let mut fh = [0u8; FRAME_HEADER_LEN];
        let read_frame =
            |pos: u64, fh: &mut [u8; FRAME_HEADER_LEN]| -> Result<(u32, u32), CoreError> {
                if pos + FRAME_HEADER_LEN as u64 > file_len {
                    return Err(CodecError::Truncated.into());
                }
                source.read_exact_at(fh, pos)?;
                Ok(frame_header(fh))
            };
        let (meta_len, meta_crc) = read_frame(pos, &mut fh)?;
        pos += FRAME_HEADER_LEN as u64;
        if pos + u64::from(meta_len) > file_len {
            return Err(CodecError::Truncated.into());
        }
        let mut meta_comp = vec![0u8; meta_len as usize];
        source.read_exact_at(&mut meta_comp, pos)?;
        if crc32::checksum(&meta_comp) != meta_crc {
            return Err(CodecError::CrcMismatch { frame: 0 }.into());
        }
        let meta_der = lzss::decompress(&meta_comp)?;
        let (benchmark, scope, max_hierarchy) = parse_meta_der(&meta_der)?;
        pos += u64::from(meta_len);
        let mut total = 0u64;
        for _ in 1..count {
            let (len, _) = read_frame(pos, &mut fh)?;
            pos += FRAME_HEADER_LEN as u64 + u64::from(len);
            if pos > file_len {
                return Err(CodecError::Truncated.into());
            }
            total += u64::from(len);
        }
        Ok(LibraryHeader {
            format_version: 1,
            benchmark,
            scope,
            max_hierarchy,
            points: u64::from(count) - 1,
            blocks: 0,
            total_compressed_bytes: total,
            file_bytes: file_len,
            content_hash: None,
        })
    }

    /// Load from a file — an alias for [`open`](Self::open), kept for
    /// callers predating the paged format.
    ///
    /// # Errors
    ///
    /// Propagates I/O and container errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        Self::open(path)
    }

    /// Convert a paged backing into the memory backing (plain-LZSS
    /// records resident, processing order preserved). A no-op for
    /// libraries that are already in memory.
    ///
    /// # Errors
    ///
    /// Propagates read faults from the paged source.
    pub fn materialize(&mut self) -> Result<(), CoreError> {
        if matches!(self.backing, Backing::Memory(_)) {
            return Ok(());
        }
        let mut records = Vec::with_capacity(self.len());
        self.for_each_plain_record(|rec| {
            records.push(rec.to_vec());
            Ok(())
        })?;
        self.backing = Backing::Memory(records);
        self.order = Vec::new();
        self.cache_hash = OnceLock::new();
        Ok(())
    }

    /// Merge another library of the same benchmark into this one
    /// (growing the sample-size upper bound, e.g. when a comparative
    /// study needs more points than originally planned — the risk §6.2
    /// discusses). The merged records are re-shuffled. Paged backings
    /// are materialized first; to merge large on-disk libraries without
    /// decompressing them, use [`merge_files`](Self::merge_files).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkMismatch`] when the benchmark or
    /// creation bounds differ (points from mismatched bounds cannot be
    /// processed interchangeably).
    pub fn merge(
        &mut self,
        mut other: LivePointLibrary,
        shuffle_seed: u64,
    ) -> Result<(), CoreError> {
        if other.benchmark != self.benchmark
            || other.max_hierarchy != self.max_hierarchy
            || other.scope != self.scope
        {
            return Err(CoreError::BenchmarkMismatch {
                expected: self.benchmark.clone(),
                found: other.benchmark,
            });
        }
        self.materialize()?;
        other.materialize()?;
        let Backing::Memory(ours) = &mut self.backing else {
            unreachable!("materialize yields a memory backing");
        };
        let Backing::Memory(theirs) = other.backing else {
            unreachable!("materialize yields a memory backing");
        };
        ours.extend(theirs);
        self.shuffle(shuffle_seed);
        Ok(())
    }

    /// Merge library files of either format into one v2 container at
    /// the index level: dictionaries and record bodies are raw-copied
    /// (CRC-verified, never decompressed), block pointers are remapped,
    /// and the combined records are written in a seeded shuffled order.
    /// The permutation matches [`merge`](Self::merge) of the same
    /// inputs with the same seed.
    ///
    /// Returns the merged library, opened paged from `out`.
    ///
    /// # Errors
    ///
    /// [`CoreError::EmptyLibrary`] for no inputs,
    /// [`CoreError::BenchmarkMismatch`] when the inputs disagree on
    /// benchmark or creation bounds, plus any I/O or container fault.
    pub fn merge_files<P: AsRef<Path>>(
        inputs: &[P],
        out: impl AsRef<Path>,
        shuffle_seed: u64,
    ) -> Result<Self, CoreError> {
        if inputs.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let libs = inputs.iter().map(Self::open).collect::<Result<Vec<_>, _>>()?;
        for lib in &libs[1..] {
            if lib.benchmark != libs[0].benchmark
                || lib.max_hierarchy != libs[0].max_hierarchy
                || lib.scope != libs[0].scope
            {
                return Err(CoreError::BenchmarkMismatch {
                    expected: libs[0].benchmark.clone(),
                    found: lib.benchmark.clone(),
                });
            }
        }
        let out = out.as_ref();
        spectral_faultd::probe("library.merge.save")?;
        let tmp = tmp_sibling(out);
        match Self::merge_files_into(&libs, &tmp, shuffle_seed) {
            Ok(()) => {
                commit_tmp("library.merge.save", &tmp, out)?;
            }
            Err(e) => {
                std::fs::remove_file(&tmp).ok();
                return Err(e);
            }
        }
        Self::open(out)
    }

    /// The streaming body of [`merge_files`](Self::merge_files),
    /// writing the merged container to its (non-atomic) destination.
    fn merge_files_into(libs: &[Self], out: &Path, shuffle_seed: u64) -> Result<(), CoreError> {
        let file = File::create(out)?;
        let mut w = paged::PagedWriter::new(BufWriter::new(file), &libs[0].meta_der())?;

        // Write every input's dictionaries up front; records then point
        // back at them through a per-input block-id base.
        let mut block_base = Vec::with_capacity(libs.len());
        let mut written_blocks = 0u32;
        let mut buf = Vec::new();
        for lib in libs {
            block_base.push(written_blocks);
            match &lib.backing {
                Backing::Memory(_) => {
                    w.begin_block(&[])?;
                    written_blocks += 1;
                }
                Backing::Paged(p) => {
                    for (bi, b) in p.blocks.iter().enumerate() {
                        if b.dict_len == 0 {
                            w.begin_block(&[])?;
                        } else {
                            p.read_dict_raw(bi, &mut buf)?;
                            w.begin_block(&buf)?;
                        }
                        written_blocks += 1;
                    }
                }
            }
        }

        // Shuffle the concatenated processing orders — the same
        // permutation `merge` applies to the concatenated record vector.
        let mut all: Vec<(u32, u32)> = Vec::new();
        for (li, lib) in libs.iter().enumerate() {
            all.extend((0..lib.len() as u32).map(|i| (li as u32, i)));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(shuffle_seed);
        all.shuffle(&mut rng);

        for (li, i) in all {
            let lib = &libs[li as usize];
            let base = block_base[li as usize];
            match &lib.backing {
                Backing::Memory(records) => {
                    w.push_record_in_block(&records[i as usize], base)?;
                }
                Backing::Paged(p) => {
                    let stored = lib.order[i as usize] as usize;
                    p.read_record(stored, &mut buf)?;
                    w.push_record_in_block(&buf, base + p.records[stored].block)?;
                }
            }
        }
        w.finish()?;
        Ok(())
    }

    /// Create one library per program, spreading `threads` workers
    /// across benchmarks and, within each benchmark, across the
    /// encode/compress pipeline of
    /// [`create_parallel`](Self::create_parallel) — the batch shape the
    /// experiment binaries use ("simulation on clusters", §6.1).
    /// Results are returned in input order and are identical to
    /// per-program serial creation.
    ///
    /// # Errors
    ///
    /// Propagates the first per-program creation fault.
    pub fn create_all(
        programs: &[Program],
        cfg: &CreationConfig,
        threads: usize,
    ) -> Result<Vec<LivePointLibrary>, CoreError> {
        if programs.is_empty() {
            return Ok(Vec::new());
        }
        let threads = threads.max(1);
        let outer = threads.min(programs.len());
        if outer <= 1 {
            return programs.iter().map(|p| Self::create_parallel(p, cfg, threads)).collect();
        }
        // Remaining parallelism goes to each benchmark's encode stage.
        let inner = (threads / outer).max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<LivePointLibrary, CoreError>>>> =
            programs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(program) = programs.get(i) else { break };
                    let lib = Self::create_parallel(program, cfg, inner);
                    *results[i].lock().expect("result lock") = Some(lib);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("result lock").expect("worker filled slot"))
            .collect()
    }
}

/// DER-encode the library metadata payload.
/// The temp sibling a streaming save writes to before its atomic
/// rename: `<file>.tmp.<pid>`, in the same directory so the rename
/// stays within one filesystem.
fn tmp_sibling(path: &Path) -> std::path::PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(format!(".tmp.{}", std::process::id()));
    std::path::PathBuf::from(name)
}

/// Durably publish a fully written temp file at its final path:
/// fsync the temp, rename it over `path`, then fsync the parent
/// directory (best-effort) so the rename itself survives a crash.
/// `{site}.rename` is a fault kill-point between fsync and rename —
/// a SIGKILL there leaves the old file (or nothing) plus a temp
/// sibling, never a torn container.
fn commit_tmp(site: &str, tmp: &Path, path: &Path) -> std::io::Result<()> {
    let f = File::open(tmp)?;
    f.sync_all()?;
    drop(f);
    spectral_faultd::kill_point(&format!("{site}.rename"));
    std::fs::rename(tmp, path)?;
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

fn encode_meta_der(benchmark: &str, scope: StateScope, h: &HierarchyConfig) -> Vec<u8> {
    let mut meta = DerWriter::new();
    meta.seq(|w| {
        w.utf8(benchmark);
        w.u64(match scope {
            StateScope::Full => 0,
            StateScope::Restricted => 1,
        });
        for c in [&h.l1i, &h.l1d, &h.l2] {
            w.seq(|w| {
                w.u64(c.size_bytes());
                w.u64(c.assoc() as u64);
                w.u64(c.line_bytes());
            });
        }
        for t in [&h.itlb, &h.dtlb] {
            w.seq(|w| {
                w.u64(t.entries() as u64);
                w.u64(t.assoc() as u64);
                w.u64(t.page_bytes());
            });
        }
    });
    meta.finish()
}

/// Parse the library metadata payload written by [`encode_meta_der`].
fn parse_meta_der(meta: &[u8]) -> Result<(String, StateScope, HierarchyConfig), CoreError> {
    let mut r = DerReader::new(meta);
    let mut s = r.seq()?;
    let benchmark = s.utf8()?.to_owned();
    let scope = match s.u64()? {
        0 => StateScope::Full,
        _ => StateScope::Restricted,
    };
    let mut cache_cfg = || -> Result<spectral_cache::CacheConfig, CoreError> {
        let mut q = s.seq()?;
        Ok(spectral_cache::CacheConfig::new(q.u64()?, q.u64()? as u32, q.u64()?)?)
    };
    let l1i = cache_cfg()?;
    let l1d = cache_cfg()?;
    let l2 = cache_cfg()?;
    let mut tlb_cfg = || -> Result<spectral_cache::TlbConfig, CoreError> {
        let mut q = s.seq()?;
        Ok(spectral_cache::TlbConfig::new(q.u64()? as u32, q.u64()? as u32, q.u64()?)?)
    };
    let itlb = tlb_cfg()?;
    let dtlb = tlb_cfg()?;
    Ok((benchmark, scope, HierarchyConfig { l1i, l1d, l2, itlb, dtlb }))
}

/// Run the sequential functional-warming walk over `windows`, handing
/// each completed window's [`LivePoint`] to `sink` in window order.
/// Stops early when the benchmark halts before the remaining windows.
fn walk_windows(
    program: &Program,
    cfg: &CreationConfig,
    windows: &[WindowSpec],
    mut sink: impl FnMut(usize, LivePoint),
) {
    let mut warmers = CreationWarmers::new(cfg);
    let mut emu = Emulator::new(program);
    for (i, w) in windows.iter().enumerate() {
        // Functional warming up to the window.
        let sw = Stopwatch::start();
        while emu.seq() < w.detail_start && !emu.is_halted() {
            if let Some(di) = emu.step() {
                warmers.observe(&di);
            }
        }
        TLM_WARM_NS.add(sw.ns());
        if emu.is_halted() {
            break;
        }
        let sw = Stopwatch::start();
        let payload = warmers.snapshot();
        let mut collector = LiveStateCollector::begin(&emu);
        let mut touched = TouchedState::default();
        let hard_end = windows.get(i + 1).map(|next| next.detail_start).unwrap_or(u64::MAX);
        let limit = (w.end() + cfg.read_slack).min(hard_end);
        while emu.seq() < limit && !emu.is_halted() {
            let Some(di) = emu.step() else { break };
            warmers.observe(&di);
            if di.seq < w.end() && cfg.scope == StateScope::Restricted {
                touched.observe(&di, &cfg.max_hierarchy);
            }
            if let Some((op, addr)) = di.mem {
                collector.observe(op, addr, emu.memory().read_u64(addr));
            }
        }
        let live_state = collector.finish();
        let warm = match cfg.scope {
            StateScope::Full => payload,
            StateScope::Restricted => restrict_payload(payload, &touched, cfg),
        };
        TLM_SNAPSHOT_NS.add(sw.ns());
        TLM_WINDOWS.inc();
        sink(
            i,
            LivePoint {
                benchmark: program.name().to_owned(),
                window: *w,
                scope: cfg.scope,
                live_state,
                warm,
                max_hierarchy: cfg.max_hierarchy,
            },
        );
    }
}

/// Pipelined creation: the warming walk runs on the calling thread,
/// feeding snapshots through a channel to `threads` encode/compress
/// workers. Indexed result slots preserve record order, so the output is
/// byte-identical to the serial pass.
fn encode_pipelined(
    program: &Program,
    cfg: &CreationConfig,
    windows: &[WindowSpec],
    threads: usize,
) -> Vec<Vec<u8>> {
    let (tx, rx) = std::sync::mpsc::channel::<(usize, LivePoint)>();
    let rx = Mutex::new(rx);
    let slots: Vec<Mutex<Option<Vec<u8>>>> = windows.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = lzss::CompressScratch::new();
                loop {
                    // Take the receiver lock only to pull the next job;
                    // encoding runs unlocked.
                    let job = rx.lock().expect("receiver lock").recv();
                    let Ok((i, lp)) = job else { break };
                    let bytes = compress_record(&mut scratch, &lp);
                    *slots[i].lock().expect("slot lock") = Some(bytes);
                }
            });
        }
        walk_windows(program, cfg, windows, |i, lp| {
            tx.send((i, lp)).expect("encode workers outlive the walk");
        });
        drop(tx);
    });
    // The walk may halt early; completed records are a prefix.
    slots.into_iter().map_while(|slot| slot.into_inner().expect("slot lock")).collect()
}

/// Pipelined creation streamed to disk: the walk feeds `threads`
/// encode/compress workers, and a dedicated writer thread drains their
/// output through a reorder buffer so records land in the spool in
/// window order with only O(threads) records in flight — never the
/// whole library. Returns the first write fault, if any.
fn spool_pipelined<W: std::io::Write + Send>(
    program: &Program,
    cfg: &CreationConfig,
    windows: &[WindowSpec],
    threads: usize,
    w: &mut paged::PagedWriter<W>,
) -> Option<std::io::Error> {
    let (tx, rx) = std::sync::mpsc::channel::<(usize, LivePoint)>();
    let (otx, orx) = std::sync::mpsc::channel::<(usize, Vec<u8>)>();
    let rx = Mutex::new(rx);
    let aborted = std::sync::atomic::AtomicBool::new(false);
    let write_err: Mutex<Option<std::io::Error>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let otx = otx.clone();
            let rx = &rx;
            scope.spawn(move || {
                let mut scratch = lzss::CompressScratch::new();
                loop {
                    let job = rx.lock().expect("receiver lock").recv();
                    let Ok((i, lp)) = job else { break };
                    let bytes = compress_record(&mut scratch, &lp);
                    if otx.send((i, bytes)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(otx);
        let write_err = &write_err;
        let aborted = &aborted;
        scope.spawn(move || {
            let mut pending: BTreeMap<usize, Vec<u8>> = BTreeMap::new();
            let mut next = 0usize;
            for (i, bytes) in orx.iter() {
                pending.insert(i, bytes);
                while let Some(bytes) = pending.remove(&next) {
                    if let Err(e) = w.push_record(&bytes) {
                        *write_err.lock().expect("write-err lock") = Some(e);
                        aborted.store(true, std::sync::atomic::Ordering::Relaxed);
                        return;
                    }
                    next += 1;
                }
            }
        });
        walk_windows(program, cfg, windows, |i, lp| {
            if !aborted.load(std::sync::atomic::Ordering::Relaxed) {
                let _ = tx.send((i, lp));
            }
        });
        drop(tx);
    });
    write_err.into_inner().expect("write-err lock")
}

/// Iterator over a library's decoded live-points; created by
/// [`LivePointLibrary::iter`]. Carries its own [`DecodeScratch`] so a
/// full-library sweep reuses one decompression buffer.
#[derive(Debug)]
pub struct Iter<'l> {
    library: &'l LivePointLibrary,
    index: usize,
    scratch: DecodeScratch,
}

impl Iterator for Iter<'_> {
    type Item = Result<LivePoint, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.index >= self.library.len() {
            return None;
        }
        let item = self.library.get_with(&mut self.scratch, self.index);
        self.index += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.library.len() - self.index;
        (left, Some(left))
    }
}

fn restrict_payload(
    payload: WarmPayload,
    touched: &TouchedState,
    cfg: &CreationConfig,
) -> WarmPayload {
    use crate::creation::filter_csr;
    use crate::livepoint::tlb_as_cache;
    let h = &cfg.max_hierarchy;
    WarmPayload {
        l1i: filter_csr(&payload.l1i, &touched.l1i, &h.l1i),
        l1d: filter_csr(&payload.l1d, &touched.l1d, &h.l1d),
        l2: filter_csr(&payload.l2, &touched.l2, &h.l2),
        itlb: filter_csr(&payload.itlb, &touched.itlb, &tlb_as_cache(&h.itlb)),
        dtlb: filter_csr(&payload.dtlb, &touched.dtlb, &tlb_as_cache(&h.dtlb)),
        bpreds: payload.bpreds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_uarch::MachineConfig;
    use spectral_workloads::tiny;

    fn small_cfg() -> CreationConfig {
        CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(12)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("spectral_test_{name}_{}", std::process::id()))
    }

    /// Decoded window starts in processing order — the order-sensitive
    /// fingerprint used to compare libraries across backings.
    fn window_seq(l: &LivePointLibrary) -> Vec<u64> {
        (0..l.len()).map(|i| l.get(i).unwrap().window.measure_start).collect()
    }

    #[test]
    fn create_and_decode() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        assert!(lib.len() >= 10, "got {} points", lib.len());
        let lp = lib.get(0).unwrap();
        assert_eq!(lp.benchmark, "tiny");
        assert!(lp.live_state.word_count() > 0);
        assert!(lp.warm.l2.entry_count() > 0);
    }

    #[test]
    fn shuffled_but_deterministic() {
        let p = tiny().build();
        let a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let b = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        // Same seed → same order.
        assert_eq!(window_seq(&a), window_seq(&b));
        // Shuffled: not in program order.
        let s = window_seq(&a);
        assert!(s.windows(2).any(|w| w[0] > w[1]), "library should be shuffled: {s:?}");
    }

    #[test]
    fn container_roundtrip() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let bytes = lib.to_bytes().unwrap();
        let back = LivePointLibrary::from_bytes(&bytes).unwrap();
        assert_eq!(back.benchmark(), lib.benchmark());
        assert_eq!(back.len(), lib.len());
        assert_eq!(back.max_hierarchy(), lib.max_hierarchy());
        assert_eq!(back.get(3).unwrap().window, lib.get(3).unwrap().window);
    }

    #[test]
    fn file_roundtrip() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let path = temp_path("library_v1.splp");
        lib.save(&path).unwrap();
        let back = LivePointLibrary::load(&path).unwrap();
        assert_eq!(back.len(), lib.len());
        assert_eq!(back.format_version(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paged_roundtrip_dict_off() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let path = temp_path("library_v2_plain.splp");
        let opts = V2WriteOptions { dict: false, ..V2WriteOptions::default() };
        let summary = lib.save_v2(&path, &opts).unwrap();
        assert_eq!(summary.count as usize, lib.len());
        // Dictionary-less records are byte-identical to v1 bodies, so
        // the stored content hash equals the in-memory hash …
        assert_eq!(summary.content_hash, lib.content_hash());
        let back = LivePointLibrary::open(&path).unwrap();
        assert_eq!(back.format_version(), 2);
        assert_eq!(back.benchmark(), lib.benchmark());
        assert_eq!(back.scope(), lib.scope());
        assert_eq!(back.max_hierarchy(), lib.max_hierarchy());
        assert_eq!(back.len(), lib.len());
        assert_eq!(back.content_hash(), lib.content_hash());
        // … as do the footer-derived sizes (satellite: v1/v2 agreement).
        assert_eq!(back.total_compressed_bytes(), lib.total_compressed_bytes());
        for i in 0..lib.len() {
            assert_eq!(back.record_bytes(i), lib.record_bytes(i));
        }
        assert_eq!(window_seq(&back), window_seq(&lib));
        assert_eq!(
            back.mean_breakdown(4).unwrap().regs_tlb,
            lib.mean_breakdown(4).unwrap().regs_tlb
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn paged_roundtrip_dict_on_and_ratio() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let path = temp_path("library_v2_dict.splp");
        lib.save_v2(&path, &V2WriteOptions::default()).unwrap();
        let back = LivePointLibrary::open(&path).unwrap();
        assert_eq!(back.len(), lib.len());
        assert_eq!(window_seq(&back), window_seq(&lib));
        // Every point decodes identically through the dictionary.
        for i in 0..lib.len() {
            assert_eq!(back.get(i).unwrap().window, lib.get(i).unwrap().window);
        }
        // Shared dictionaries must not cost bytes per record.
        assert!(
            back.total_compressed_bytes() <= lib.total_compressed_bytes(),
            "dict records {} B should be <= plain {} B",
            back.total_compressed_bytes(),
            lib.total_compressed_bytes()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v1_v2_v1_round_trip_is_byte_identical() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let v1 = lib.to_bytes().unwrap();
        let path = temp_path("library_v2_rt.splp");
        lib.save_v2(&path, &V2WriteOptions::default()).unwrap();
        let back = LivePointLibrary::open(&path).unwrap();
        // Dictionary records decompress + deterministically recompress
        // to the exact original plain streams.
        assert_eq!(back.to_bytes().unwrap(), v1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_header_reports_both_formats() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let v1_path = temp_path("header_v1.splp");
        let v2_path = temp_path("header_v2.splp");
        lib.save(&v1_path).unwrap();
        let opts = V2WriteOptions { dict: false, ..V2WriteOptions::default() };
        lib.save_v2(&v2_path, &opts).unwrap();

        let h1 = LivePointLibrary::open_header(&v1_path).unwrap();
        assert_eq!(h1.format_version, 1);
        assert_eq!(h1.benchmark, lib.benchmark());
        assert_eq!(h1.points as usize, lib.len());
        assert_eq!(h1.total_compressed_bytes, lib.total_compressed_bytes());
        assert_eq!(h1.scope, lib.scope());
        assert_eq!(&h1.max_hierarchy, lib.max_hierarchy());
        assert!(h1.content_hash.is_none());

        let h2 = LivePointLibrary::open_header(&v2_path).unwrap();
        assert_eq!(h2.format_version, 2);
        assert_eq!(h2.benchmark, lib.benchmark());
        assert_eq!(h2.points as usize, lib.len());
        assert_eq!(h2.total_compressed_bytes, lib.total_compressed_bytes());
        assert_eq!(h2.content_hash, Some(lib.content_hash()));
        assert!(h2.blocks > 0);

        std::fs::remove_file(&v1_path).ok();
        std::fs::remove_file(&v2_path).ok();
    }

    #[test]
    fn streamed_creation_matches_in_memory() {
        let p = tiny().build();
        let cfg = small_cfg();
        let mem = LivePointLibrary::create(&p, &cfg).unwrap();
        let opts = V2WriteOptions { dict: false, ..V2WriteOptions::default() };
        for threads in [1, 4] {
            let path = temp_path(&format!("streamed_{threads}.splp"));
            let streamed =
                LivePointLibrary::create_parallel_to_path(&p, &cfg, threads, &path, &opts).unwrap();
            assert_eq!(streamed.format_version(), 2);
            assert_eq!(streamed.len(), mem.len());
            // Same records, same shuffle ⇒ same stream ⇒ same hash.
            assert_eq!(streamed.content_hash(), mem.content_hash());
            assert_eq!(window_seq(&streamed), window_seq(&mem));
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn merge_files_matches_in_memory_merge() {
        let p = tiny().build();
        let a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let b = LivePointLibrary::create(&p, &small_cfg().with_seed(991)).unwrap();
        let a_path = temp_path("merge_a_v1.splp");
        let b_path = temp_path("merge_b_v2.splp");
        let out_plain = temp_path("merge_out_plain.splp");
        let out_dict = temp_path("merge_out_dict.splp");
        a.save(&a_path).unwrap();

        let mut expected = a.clone();
        expected.merge(b.clone(), 5).unwrap();

        // Dictionary-less v2 input: the merged stream raw-copies the
        // exact plain bodies, so the content hash matches in-memory.
        b.save_v2(&b_path, &V2WriteOptions { dict: false, ..V2WriteOptions::default() }).unwrap();
        let merged = LivePointLibrary::merge_files(&[&a_path, &b_path], &out_plain, 5).unwrap();
        assert_eq!(merged.len(), expected.len());
        assert_eq!(merged.content_hash(), expected.content_hash());
        assert_eq!(window_seq(&merged), window_seq(&expected));

        // Dictionary v2 input: bodies differ (dictionary-compressed,
        // copied without decompression) but the order and every decoded
        // point must still match.
        b.save_v2(&b_path, &V2WriteOptions::default()).unwrap();
        let merged = LivePointLibrary::merge_files(&[&a_path, &b_path], &out_dict, 5).unwrap();
        assert_eq!(merged.len(), expected.len());
        assert_eq!(window_seq(&merged), window_seq(&expected));

        for p in [&a_path, &b_path, &out_plain, &out_dict] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn paged_shuffle_is_deterministic_and_complete() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let path = temp_path("library_v2_shuffle.splp");
        lib.save_v2(&path, &V2WriteOptions::default()).unwrap();
        let mut a = LivePointLibrary::open(&path).unwrap();
        let mut b = LivePointLibrary::open(&path).unwrap();
        let before_hash = a.content_hash();
        a.shuffle(7);
        b.shuffle(7);
        assert_eq!(window_seq(&a), window_seq(&b));
        assert_ne!(a.content_hash(), before_hash, "reshuffle must change the identity stamp");
        // Same multiset of points, different order.
        let mut sa = window_seq(&a);
        let mut sl = window_seq(&lib);
        sa.sort_unstable();
        sl.sort_unstable();
        assert_eq!(sa, sl);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn merge_accepts_paged_backing() {
        let p = tiny().build();
        let a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let b = LivePointLibrary::create(&p, &small_cfg().with_seed(991)).unwrap();
        let path = temp_path("merge_paged_in.splp");
        a.save_v2(&path, &V2WriteOptions::default()).unwrap();
        let mut paged = LivePointLibrary::open(&path).unwrap();
        let total = a.len() + b.len();
        paged.merge(b, 5).unwrap();
        assert_eq!(paged.len(), total);
        assert_eq!(paged.format_version(), 1, "merge materializes");
        for i in 0..paged.len() {
            paged.get(i).unwrap();
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restricted_is_smaller_than_full() {
        let p = tiny().build();
        let full = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let restricted =
            LivePointLibrary::create(&p, &small_cfg().with_scope(StateScope::Restricted)).unwrap();
        assert!(
            restricted.total_compressed_bytes() < full.total_compressed_bytes(),
            "restricted {} vs full {}",
            restricted.total_compressed_bytes(),
            full.total_compressed_bytes()
        );
        assert_eq!(restricted.scope(), StateScope::Restricted);
    }

    #[test]
    fn pipelined_creation_is_byte_identical() {
        let p = tiny().build();
        let cfg = small_cfg();
        let serial = LivePointLibrary::create_parallel(&p, &cfg, 1).unwrap();
        for threads in [2, 4, 8] {
            let piped = LivePointLibrary::create_parallel(&p, &cfg, threads).unwrap();
            assert_eq!(
                serial.to_bytes().unwrap(),
                piped.to_bytes().unwrap(),
                "pipelined creation with {threads} workers must be byte-identical"
            );
        }
    }

    #[test]
    fn create_all_matches_individual_creation() {
        let programs = vec![tiny().build(), tiny().scaled(2).build()];
        let cfg = small_cfg();
        let batch = LivePointLibrary::create_all(&programs, &cfg, 4).unwrap();
        assert_eq!(batch.len(), 2);
        for (program, lib) in programs.iter().zip(&batch) {
            let solo = LivePointLibrary::create(program, &cfg).unwrap();
            assert_eq!(lib.to_bytes().unwrap(), solo.to_bytes().unwrap());
        }
    }

    #[test]
    fn merge_grows_library() {
        let p = tiny().build();
        let mut a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let b = LivePointLibrary::create(&p, &small_cfg().with_seed(991)).unwrap();
        let total = a.len() + b.len();
        a.merge(b, 5).unwrap();
        assert_eq!(a.len(), total);
        // Every merged record still decodes.
        for i in 0..a.len() {
            a.get(i).unwrap();
        }
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let p = tiny().build();
        let mut a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let bigger = CreationConfig::default().with_sample_size(12);
        let b = LivePointLibrary::create(&p, &bigger).unwrap();
        assert!(a.merge(b, 5).is_err());
    }

    #[test]
    fn out_of_range_get() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        assert!(matches!(lib.get(99_999), Err(CoreError::IndexOutOfRange { .. })));
    }

    #[test]
    fn live_points_far_smaller_than_conventional() {
        // §5's headline: live-state shrinks checkpoints by orders of
        // magnitude relative to the process footprint.
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let lp = lib.get(0).unwrap();
        let conventional = lp.live_state.conventional_bytes;
        let live = lib.mean_point_bytes();
        assert!(
            live * 4 < conventional,
            "live-point {live} B should be far below conventional {conventional} B"
        );
    }
}
