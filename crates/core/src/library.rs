//! Live-point libraries: creation, shuffling, and on-disk containers.

use std::path::Path;
use std::sync::Mutex;

use rand::seq::SliceRandom;
use rand::SeedableRng;
use spectral_cache::HierarchyConfig;
use spectral_codec::{lzss, ContainerReader, ContainerWriter, DerReader, DerWriter};
use spectral_isa::{Emulator, Program};
use spectral_stats::{SampleDesign, SystematicDesign, WindowSpec};
use spectral_telemetry::{Counter, Histogram, Stopwatch};

use crate::creation::{benchmark_length, CreationConfig, CreationWarmers, TouchedState};
use crate::encode::{decode_livepoint, encode_livepoint};
use crate::error::CoreError;
use crate::livepoint::{LivePoint, SizeBreakdown, WarmPayload};
use crate::livestate::{LiveStateCollector, StateScope};

// Library-creation metrics: where creation time goes (functional
// warming vs. state snapshot vs. DER encode vs. LZSS compress) and how
// big each record is before/after compression. All no-ops without the
// `telemetry` feature.
static TLM_WINDOWS: Counter = Counter::new("core.create.windows");
static TLM_WARM_NS: Counter = Counter::new("core.create.warm_ns");
static TLM_SNAPSHOT_NS: Counter = Counter::new("core.create.snapshot_ns");
static TLM_ENCODE_NS: Counter = Counter::new("core.create.der_encode_ns");
static TLM_COMPRESS_NS: Counter = Counter::new("core.create.compress_ns");
static TLM_DER_BYTES: Histogram = Histogram::new("core.create.record_der_bytes");
static TLM_RECORD_BYTES: Histogram = Histogram::new("core.create.record_bytes");

/// DER-encode and LZSS-compress one live-point, feeding the per-record
/// telemetry — the single compression site for both the serial and the
/// pipelined creation paths. The caller keeps one [`CompressScratch`]
/// per thread so the match-finder tables are allocated once, not per
/// record.
fn compress_record(scratch: &mut lzss::CompressScratch, lp: &LivePoint) -> Vec<u8> {
    let sw = Stopwatch::start();
    let der = encode_livepoint(lp);
    TLM_ENCODE_NS.add(sw.ns());
    TLM_DER_BYTES.record(der.len() as u64);
    let sw = Stopwatch::start();
    let bytes = lzss::compress_with(scratch, &der);
    TLM_COMPRESS_NS.add(sw.ns());
    TLM_RECORD_BYTES.record(bytes.len() as u64);
    bytes
}

/// Reusable decode buffers for [`LivePointLibrary::get_with`]: holds
/// the decompressed DER image between decodes so steady-state point
/// processing performs no decompression-side heap allocation. Keep one
/// per runner thread.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    der: Vec<u8>,
}

impl DecodeScratch {
    /// Create empty scratch; the buffer grows to the largest record
    /// decoded through it and is then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A benchmark's live-point library: independently-loadable compressed
/// records, pre-shuffled into random order (paper §6.1: "we recommend
/// shuffling live-points on disk, prior to simulation").
#[derive(Debug, Clone)]
pub struct LivePointLibrary {
    benchmark: String,
    scope: StateScope,
    max_hierarchy: HierarchyConfig,
    /// LZSS-compressed DER live-points, in shuffled order.
    records: Vec<Vec<u8>>,
}

impl LivePointLibrary {
    /// Create a library with the paper's periodic sample design: one
    /// functional pass to measure the benchmark, one creation pass to
    /// collect the points, then a seeded shuffle.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] when the benchmark
    /// cannot host a single window.
    pub fn create(program: &Program, cfg: &CreationConfig) -> Result<Self, CoreError> {
        Self::create_parallel(program, cfg, 1)
    }

    /// Create a library with the paper's periodic sample design, using a
    /// pipelined creation pass: the inherently sequential
    /// functional-warming walk stays on the calling thread while
    /// `threads` workers DER-encode and LZSS-compress each window's
    /// snapshot concurrently. Record order — and therefore the library's
    /// bytes — is identical to the serial pass for the same seed.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] when the benchmark
    /// cannot host a single window.
    pub fn create_parallel(
        program: &Program,
        cfg: &CreationConfig,
        threads: usize,
    ) -> Result<Self, CoreError> {
        let n = benchmark_length(program);
        let design = SystematicDesign::new(cfg.unit_len, cfg.warm_len);
        let windows = design.windows(n, cfg.sample_size, cfg.seed);
        Self::create_with_windows_parallel(program, cfg, &windows, threads)
    }

    /// Create a library for caller-chosen windows (sorted,
    /// non-overlapping).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] for an empty window list.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is unsorted.
    pub fn create_with_windows(
        program: &Program,
        cfg: &CreationConfig,
        windows: &[WindowSpec],
    ) -> Result<Self, CoreError> {
        Self::create_with_windows_parallel(program, cfg, windows, 1)
    }

    /// [`create_with_windows`](Self::create_with_windows) with the
    /// encode/compress stage fanned out over `threads` workers (see
    /// [`create_parallel`](Self::create_parallel)); `threads <= 1` runs
    /// fully inline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkTooShort`] for an empty window list.
    ///
    /// # Panics
    ///
    /// Panics if `windows` is unsorted.
    pub fn create_with_windows_parallel(
        program: &Program,
        cfg: &CreationConfig,
        windows: &[WindowSpec],
        threads: usize,
    ) -> Result<Self, CoreError> {
        if windows.is_empty() {
            return Err(CoreError::BenchmarkTooShort);
        }
        assert!(
            windows.windows(2).all(|w| w[0].end() <= w[1].detail_start),
            "windows must be sorted and non-overlapping"
        );

        let _span = spectral_telemetry::span("create.library");
        let records = if threads <= 1 {
            let mut records = Vec::with_capacity(windows.len());
            let mut scratch = lzss::CompressScratch::new();
            walk_windows(program, cfg, windows, |_, lp| {
                records.push(compress_record(&mut scratch, &lp));
            });
            records
        } else {
            encode_pipelined(program, cfg, windows, threads)
        };

        if records.is_empty() {
            return Err(CoreError::BenchmarkTooShort);
        }
        let mut lib = LivePointLibrary {
            benchmark: program.name().to_owned(),
            scope: cfg.scope,
            max_hierarchy: cfg.max_hierarchy,
            records,
        };
        lib.shuffle(cfg.seed ^ 0x0F1E_2D3C);
        Ok(lib)
    }

    /// The benchmark this library samples.
    pub fn benchmark(&self) -> &str {
        &self.benchmark
    }

    /// The warm-state scope the library was created with.
    pub fn scope(&self) -> StateScope {
        self.scope
    }

    /// The maximum hierarchy geometry the library supports.
    pub fn max_hierarchy(&self) -> &HierarchyConfig {
        &self.max_hierarchy
    }

    /// Number of live-points.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the library holds no live-points.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Decode live-point `index` (decompression + DER decode — the cost
    /// the paper charts as "checkpoint processing time" in Fig 8).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfRange`] or a codec fault.
    pub fn get(&self, index: usize) -> Result<LivePoint, CoreError> {
        self.get_with(&mut DecodeScratch::new(), index)
    }

    /// Decode live-point `index` reusing `scratch`'s buffers — the
    /// hot-path variant of [`get`](Self::get) used by the runners so
    /// repeated decodes allocate nothing for decompression.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::IndexOutOfRange`] or a codec fault.
    pub fn get_with(
        &self,
        scratch: &mut DecodeScratch,
        index: usize,
    ) -> Result<LivePoint, CoreError> {
        let rec = self
            .records
            .get(index)
            .ok_or(CoreError::IndexOutOfRange { index, len: self.records.len() })?;
        lzss::decompress_into(rec, &mut scratch.der)?;
        decode_livepoint(&scratch.der)
    }

    /// Iterate decoded live-points in (shuffled) processing order.
    ///
    /// ```no_run
    /// # use spectral_core::{CreationConfig, LivePointLibrary};
    /// # fn demo(library: &LivePointLibrary) -> Result<(), spectral_core::CoreError> {
    /// for lp in library.iter() {
    ///     let lp = lp?;
    ///     println!("window at {}", lp.window.measure_start);
    /// }
    /// # Ok(())
    /// # }
    /// ```
    pub fn iter(&self) -> Iter<'_> {
        Iter { library: self, index: 0, scratch: DecodeScratch::new() }
    }

    /// Compressed size of record `index` in bytes.
    pub fn record_bytes(&self, index: usize) -> Option<usize> {
        self.records.get(index).map(Vec::len)
    }

    /// Total compressed library size in bytes (the paper's "12 GB for
    /// SPEC2K" quantity, at this repo's scale).
    pub fn total_compressed_bytes(&self) -> u64 {
        self.records.iter().map(|r| r.len() as u64).sum()
    }

    /// CRC32 content hash over the compressed records in processing
    /// order — the library identity stamped into run manifests (two
    /// libraries with equal hashes process identical points in
    /// identical order).
    pub fn content_hash(&self) -> u32 {
        let mut h = spectral_codec::crc32::Hasher::new();
        for rec in &self.records {
            h.update(rec);
        }
        h.finalize()
    }

    /// Mean compressed bytes per live-point.
    pub fn mean_point_bytes(&self) -> u64 {
        if self.records.is_empty() {
            0
        } else {
            self.total_compressed_bytes() / self.records.len() as u64
        }
    }

    /// Mean uncompressed (DER) bytes per live-point, with the Figure 7
    /// component breakdown averaged over up to `sample` points.
    ///
    /// # Errors
    ///
    /// Propagates decode faults.
    pub fn mean_breakdown(&self, sample: usize) -> Result<SizeBreakdown, CoreError> {
        let n = sample.min(self.records.len()).max(1);
        let mut acc = SizeBreakdown::default();
        for i in 0..n {
            let b = self.get(i)?.size_breakdown();
            acc.regs_tlb += b.regs_tlb;
            acc.bpred += b.bpred;
            acc.l1i_tags += b.l1i_tags;
            acc.l1d_tags += b.l1d_tags;
            acc.l2_tags += b.l2_tags;
            acc.memory_data += b.memory_data;
        }
        let n = n as u64;
        Ok(SizeBreakdown {
            regs_tlb: acc.regs_tlb / n,
            bpred: acc.bpred / n,
            l1i_tags: acc.l1i_tags / n,
            l1d_tags: acc.l1d_tags / n,
            l2_tags: acc.l2_tags / n,
            memory_data: acc.memory_data / n,
        })
    }

    /// Re-shuffle the processing order (deterministic in `seed`).
    pub fn shuffle(&mut self, seed: u64) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        self.records.shuffle(&mut rng);
    }

    /// Serialize the library to container bytes (meta record followed by
    /// the compressed live-points).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut meta = DerWriter::new();
        meta.seq(|w| {
            w.utf8(&self.benchmark);
            w.u64(match self.scope {
                StateScope::Full => 0,
                StateScope::Restricted => 1,
            });
            for c in [&self.max_hierarchy.l1i, &self.max_hierarchy.l1d, &self.max_hierarchy.l2] {
                w.seq(|w| {
                    w.u64(c.size_bytes());
                    w.u64(c.assoc() as u64);
                    w.u64(c.line_bytes());
                });
            }
            for t in [&self.max_hierarchy.itlb, &self.max_hierarchy.dtlb] {
                w.seq(|w| {
                    w.u64(t.entries() as u64);
                    w.u64(t.assoc() as u64);
                    w.u64(t.page_bytes());
                });
            }
        });
        let mut writer = ContainerWriter::new();
        writer.push(&meta.finish());
        for rec in &self.records {
            writer.push_compressed(rec);
        }
        writer.finish()
    }

    /// Parse a library from container bytes.
    ///
    /// # Errors
    ///
    /// Propagates container/DER faults; an empty container is
    /// [`CoreError::EmptyLibrary`].
    pub fn from_bytes(data: &[u8]) -> Result<Self, CoreError> {
        let mut reader = ContainerReader::new(data)?;
        let meta_bytes = reader.next_record()?.ok_or(CoreError::EmptyLibrary)?;
        let mut r = DerReader::new(&meta_bytes);
        let mut s = r.seq()?;
        let benchmark = s.utf8()?.to_owned();
        let scope = match s.u64()? {
            0 => StateScope::Full,
            _ => StateScope::Restricted,
        };
        let mut cache_cfg = || -> Result<spectral_cache::CacheConfig, CoreError> {
            let mut q = s.seq()?;
            Ok(spectral_cache::CacheConfig::new(q.u64()?, q.u64()? as u32, q.u64()?)?)
        };
        let l1i = cache_cfg()?;
        let l1d = cache_cfg()?;
        let l2 = cache_cfg()?;
        let mut tlb_cfg = || -> Result<spectral_cache::TlbConfig, CoreError> {
            let mut q = s.seq()?;
            Ok(spectral_cache::TlbConfig::new(q.u64()? as u32, q.u64()? as u32, q.u64()?)?)
        };
        let itlb = tlb_cfg()?;
        let dtlb = tlb_cfg()?;
        let mut records = Vec::new();
        while let Some(rec) = reader.next_record_compressed()? {
            records.push(rec);
        }
        Ok(LivePointLibrary {
            benchmark,
            scope,
            max_hierarchy: HierarchyConfig { l1i, l1d, l2, itlb, dtlb },
            records,
        })
    }

    /// Save to a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), CoreError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }

    /// Load from a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O and container errors.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, CoreError> {
        Self::from_bytes(&std::fs::read(path)?)
    }

    /// Merge another library of the same benchmark into this one
    /// (growing the sample-size upper bound, e.g. when a comparative
    /// study needs more points than originally planned — the risk §6.2
    /// discusses). The merged records are re-shuffled.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::BenchmarkMismatch`] when the benchmark or
    /// creation bounds differ (points from mismatched bounds cannot be
    /// processed interchangeably).
    pub fn merge(&mut self, other: LivePointLibrary, shuffle_seed: u64) -> Result<(), CoreError> {
        if other.benchmark != self.benchmark
            || other.max_hierarchy != self.max_hierarchy
            || other.scope != self.scope
        {
            return Err(CoreError::BenchmarkMismatch {
                expected: self.benchmark.clone(),
                found: other.benchmark,
            });
        }
        self.records.extend(other.records);
        self.shuffle(shuffle_seed);
        Ok(())
    }

    /// Create one library per program, spreading `threads` workers
    /// across benchmarks and, within each benchmark, across the
    /// encode/compress pipeline of
    /// [`create_parallel`](Self::create_parallel) — the batch shape the
    /// experiment binaries use ("simulation on clusters", §6.1).
    /// Results are returned in input order and are identical to
    /// per-program serial creation.
    ///
    /// # Errors
    ///
    /// Propagates the first per-program creation fault.
    pub fn create_all(
        programs: &[Program],
        cfg: &CreationConfig,
        threads: usize,
    ) -> Result<Vec<LivePointLibrary>, CoreError> {
        if programs.is_empty() {
            return Ok(Vec::new());
        }
        let threads = threads.max(1);
        let outer = threads.min(programs.len());
        if outer <= 1 {
            return programs.iter().map(|p| Self::create_parallel(p, cfg, threads)).collect();
        }
        // Remaining parallelism goes to each benchmark's encode stage.
        let inner = (threads / outer).max(1);
        let next = std::sync::atomic::AtomicUsize::new(0);
        let results: Vec<Mutex<Option<Result<LivePointLibrary, CoreError>>>> =
            programs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..outer {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(program) = programs.get(i) else { break };
                    let lib = Self::create_parallel(program, cfg, inner);
                    *results[i].lock().expect("result lock") = Some(lib);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| slot.into_inner().expect("result lock").expect("worker filled slot"))
            .collect()
    }
}

/// Run the sequential functional-warming walk over `windows`, handing
/// each completed window's [`LivePoint`] to `sink` in window order.
/// Stops early when the benchmark halts before the remaining windows.
fn walk_windows(
    program: &Program,
    cfg: &CreationConfig,
    windows: &[WindowSpec],
    mut sink: impl FnMut(usize, LivePoint),
) {
    let mut warmers = CreationWarmers::new(cfg);
    let mut emu = Emulator::new(program);
    for (i, w) in windows.iter().enumerate() {
        // Functional warming up to the window.
        let sw = Stopwatch::start();
        while emu.seq() < w.detail_start && !emu.is_halted() {
            if let Some(di) = emu.step() {
                warmers.observe(&di);
            }
        }
        TLM_WARM_NS.add(sw.ns());
        if emu.is_halted() {
            break;
        }
        let sw = Stopwatch::start();
        let payload = warmers.snapshot();
        let mut collector = LiveStateCollector::begin(&emu);
        let mut touched = TouchedState::default();
        let hard_end = windows.get(i + 1).map(|next| next.detail_start).unwrap_or(u64::MAX);
        let limit = (w.end() + cfg.read_slack).min(hard_end);
        while emu.seq() < limit && !emu.is_halted() {
            let Some(di) = emu.step() else { break };
            warmers.observe(&di);
            if di.seq < w.end() && cfg.scope == StateScope::Restricted {
                touched.observe(&di, &cfg.max_hierarchy);
            }
            if let Some((op, addr)) = di.mem {
                collector.observe(op, addr, emu.memory().read_u64(addr));
            }
        }
        let live_state = collector.finish();
        let warm = match cfg.scope {
            StateScope::Full => payload,
            StateScope::Restricted => restrict_payload(payload, &touched, cfg),
        };
        TLM_SNAPSHOT_NS.add(sw.ns());
        TLM_WINDOWS.inc();
        sink(
            i,
            LivePoint {
                benchmark: program.name().to_owned(),
                window: *w,
                scope: cfg.scope,
                live_state,
                warm,
                max_hierarchy: cfg.max_hierarchy,
            },
        );
    }
}

/// Pipelined creation: the warming walk runs on the calling thread,
/// feeding snapshots through a channel to `threads` encode/compress
/// workers. Indexed result slots preserve record order, so the output is
/// byte-identical to the serial pass.
fn encode_pipelined(
    program: &Program,
    cfg: &CreationConfig,
    windows: &[WindowSpec],
    threads: usize,
) -> Vec<Vec<u8>> {
    let (tx, rx) = std::sync::mpsc::channel::<(usize, LivePoint)>();
    let rx = Mutex::new(rx);
    let slots: Vec<Mutex<Option<Vec<u8>>>> = windows.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut scratch = lzss::CompressScratch::new();
                loop {
                    // Take the receiver lock only to pull the next job;
                    // encoding runs unlocked.
                    let job = rx.lock().expect("receiver lock").recv();
                    let Ok((i, lp)) = job else { break };
                    let bytes = compress_record(&mut scratch, &lp);
                    *slots[i].lock().expect("slot lock") = Some(bytes);
                }
            });
        }
        walk_windows(program, cfg, windows, |i, lp| {
            tx.send((i, lp)).expect("encode workers outlive the walk");
        });
        drop(tx);
    });
    // The walk may halt early; completed records are a prefix.
    slots.into_iter().map_while(|slot| slot.into_inner().expect("slot lock")).collect()
}

/// Iterator over a library's decoded live-points; created by
/// [`LivePointLibrary::iter`]. Carries its own [`DecodeScratch`] so a
/// full-library sweep reuses one decompression buffer.
#[derive(Debug)]
pub struct Iter<'l> {
    library: &'l LivePointLibrary,
    index: usize,
    scratch: DecodeScratch,
}

impl Iterator for Iter<'_> {
    type Item = Result<LivePoint, CoreError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.index >= self.library.len() {
            return None;
        }
        let item = self.library.get_with(&mut self.scratch, self.index);
        self.index += 1;
        Some(item)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.library.len() - self.index;
        (left, Some(left))
    }
}

fn restrict_payload(
    payload: WarmPayload,
    touched: &TouchedState,
    cfg: &CreationConfig,
) -> WarmPayload {
    use crate::creation::filter_csr;
    use crate::livepoint::tlb_as_cache;
    let h = &cfg.max_hierarchy;
    WarmPayload {
        l1i: filter_csr(&payload.l1i, &touched.l1i, &h.l1i),
        l1d: filter_csr(&payload.l1d, &touched.l1d, &h.l1d),
        l2: filter_csr(&payload.l2, &touched.l2, &h.l2),
        itlb: filter_csr(&payload.itlb, &touched.itlb, &tlb_as_cache(&h.itlb)),
        dtlb: filter_csr(&payload.dtlb, &touched.dtlb, &tlb_as_cache(&h.dtlb)),
        bpreds: payload.bpreds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_uarch::MachineConfig;
    use spectral_workloads::tiny;

    fn small_cfg() -> CreationConfig {
        CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(12)
    }

    #[test]
    fn create_and_decode() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        assert!(lib.len() >= 10, "got {} points", lib.len());
        let lp = lib.get(0).unwrap();
        assert_eq!(lp.benchmark, "tiny");
        assert!(lp.live_state.word_count() > 0);
        assert!(lp.warm.l2.entry_count() > 0);
    }

    #[test]
    fn shuffled_but_deterministic() {
        let p = tiny().build();
        let a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let b = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        // Same seed → same order.
        let seqs = |l: &LivePointLibrary| -> Vec<u64> {
            (0..l.len()).map(|i| l.get(i).unwrap().window.measure_start).collect()
        };
        assert_eq!(seqs(&a), seqs(&b));
        // Shuffled: not in program order.
        let s = seqs(&a);
        assert!(s.windows(2).any(|w| w[0] > w[1]), "library should be shuffled: {s:?}");
    }

    #[test]
    fn container_roundtrip() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let bytes = lib.to_bytes();
        let back = LivePointLibrary::from_bytes(&bytes).unwrap();
        assert_eq!(back.benchmark(), lib.benchmark());
        assert_eq!(back.len(), lib.len());
        assert_eq!(back.max_hierarchy(), lib.max_hierarchy());
        assert_eq!(back.get(3).unwrap().window, lib.get(3).unwrap().window);
    }

    #[test]
    fn file_roundtrip() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let path = std::env::temp_dir().join("spectral_test_library.splp");
        lib.save(&path).unwrap();
        let back = LivePointLibrary::load(&path).unwrap();
        assert_eq!(back.len(), lib.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn restricted_is_smaller_than_full() {
        let p = tiny().build();
        let full = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let restricted =
            LivePointLibrary::create(&p, &small_cfg().with_scope(StateScope::Restricted)).unwrap();
        assert!(
            restricted.total_compressed_bytes() < full.total_compressed_bytes(),
            "restricted {} vs full {}",
            restricted.total_compressed_bytes(),
            full.total_compressed_bytes()
        );
        assert_eq!(restricted.scope(), StateScope::Restricted);
    }

    #[test]
    fn pipelined_creation_is_byte_identical() {
        let p = tiny().build();
        let cfg = small_cfg();
        let serial = LivePointLibrary::create_parallel(&p, &cfg, 1).unwrap();
        for threads in [2, 4, 8] {
            let piped = LivePointLibrary::create_parallel(&p, &cfg, threads).unwrap();
            assert_eq!(
                serial.to_bytes(),
                piped.to_bytes(),
                "pipelined creation with {threads} workers must be byte-identical"
            );
        }
    }

    #[test]
    fn create_all_matches_individual_creation() {
        let programs = vec![tiny().build(), tiny().scaled(2).build()];
        let cfg = small_cfg();
        let batch = LivePointLibrary::create_all(&programs, &cfg, 4).unwrap();
        assert_eq!(batch.len(), 2);
        for (program, lib) in programs.iter().zip(&batch) {
            let solo = LivePointLibrary::create(program, &cfg).unwrap();
            assert_eq!(lib.to_bytes(), solo.to_bytes());
        }
    }

    #[test]
    fn merge_grows_library() {
        let p = tiny().build();
        let mut a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let b = LivePointLibrary::create(&p, &small_cfg().with_seed(991)).unwrap();
        let total = a.len() + b.len();
        a.merge(b, 5).unwrap();
        assert_eq!(a.len(), total);
        // Every merged record still decodes.
        for i in 0..a.len() {
            a.get(i).unwrap();
        }
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let p = tiny().build();
        let mut a = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let bigger = CreationConfig::default().with_sample_size(12);
        let b = LivePointLibrary::create(&p, &bigger).unwrap();
        assert!(a.merge(b, 5).is_err());
    }

    #[test]
    fn out_of_range_get() {
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        assert!(matches!(lib.get(99_999), Err(CoreError::IndexOutOfRange { .. })));
    }

    #[test]
    fn live_points_far_smaller_than_conventional() {
        // §5's headline: live-state shrinks checkpoints by orders of
        // magnitude relative to the process footprint.
        let p = tiny().build();
        let lib = LivePointLibrary::create(&p, &small_cfg()).unwrap();
        let lp = lib.get(0).unwrap();
        let conventional = lp.live_state.conventional_bytes;
        let live = lib.mean_point_bytes();
        assert!(
            live * 4 < conventional,
            "live-point {live} B should be far below conventional {conventional} B"
        );
    }
}
