//! Live-point simulation: single points, and the random-order online
//! runner (serial and parallel).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use spectral_isa::{Emulator, Program};
use spectral_stats::{Confidence, OnlineEstimator, MIN_SAMPLE_SIZE};
use spectral_telemetry::{Counter, Gauge, ProfilePhase, Stopwatch, WorkerTimeline};
use spectral_uarch::{DetailedSim, MachineConfig, WindowStats};

use crate::error::CoreError;
use crate::health::{HealthMonitor, PointMeta};
use crate::library::{DecodeScratch, LivePointLibrary};
use crate::livepoint::LivePoint;
use crate::pointcache;
use crate::resume::{
    config_fingerprint, policy_fingerprint, CheckpointSpec, Recovery, RecoverySession, RunKind,
};
use crate::sched::{ChunkCursor, ChunkLog, PrefetchRing, SchedMode, WorkQueue};

// Runner metrics, shared by the online, matched-pair, and sweep
// runners: where each processed point's time goes (record decode +
// state reconstruction vs. detailed simulation), how long workers wait
// on the shared progress lock at merge points, and where early
// termination landed. All no-ops without the `telemetry` feature.
static TLM_POINTS: Counter = Counter::new("core.run.points");
static TLM_DECODE_NS: Counter = Counter::new("core.run.decode_ns");
static TLM_SIMULATE_NS: Counter = Counter::new("core.run.simulate_ns");
static TLM_MERGES: Counter = Counter::new("core.run.merges");
static TLM_LOCK_WAIT_NS: Counter = Counter::new("core.run.lock_wait_ns");
static TLM_EARLY_STOP_POINT: Gauge = Gauge::new("core.run.early_stop_point");

/// Decode live-point `index` through per-thread scratch buffers,
/// feeding the decode-time counter; also returns the decode wall-clock
/// for per-point health accounting.
///
/// Decodes go through the process-wide [`pointcache`]: matched-pair
/// and repeated-sweep workloads re-visit indices, and a hit skips the
/// read + LZSS + DER work entirely. The key is the library *content*
/// hash, so any handle onto the same bytes (v1 load, v2 open, a second
/// open of the same file) shares entries.
pub(crate) fn decode_point(
    library: &LivePointLibrary,
    index: usize,
    scratch: &mut DecodeScratch,
) -> Result<(Arc<LivePoint>, u64), CoreError> {
    // Fault site `core.decode.point`: lets the harness inject decode
    // failures (and process death) into any runner's decode path.
    spectral_faultd::probe("core.decode.point")?;
    let sw = Stopwatch::start();
    let cache = pointcache::global();
    let key = pointcache::cache_key(library.content_hash(), index);
    if let Some(lp) = cache.lookup(key) {
        let ns = sw.ns();
        TLM_DECODE_NS.add(ns);
        return Ok((lp, ns));
    }
    let lp = Arc::new(library.get_with(scratch, index)?);
    cache.insert(key, lp.clone());
    let ns = sw.ns();
    TLM_DECODE_NS.add(ns);
    Ok((lp, ns))
}

/// Simulate a decoded live-point, feeding the simulate-time counter
/// and the processed-points count (one per simulation — a matched pair
/// counts twice); also returns the simulate wall-clock for per-point
/// health accounting.
pub(crate) fn simulate_point(
    lp: &LivePoint,
    program: &Program,
    machine: &MachineConfig,
) -> Result<(WindowStats, u64), CoreError> {
    // Fault site `core.sim.point`: simulation faults and worker death
    // (each parallel worker funnels through here, so an armed kill at
    // this site dies inside worker code mid-run).
    spectral_faultd::probe("core.sim.point")?;
    let sw = Stopwatch::start();
    let stats = simulate_live_point(lp, program, machine)?;
    let ns = sw.ns();
    TLM_SIMULATE_NS.add(ns);
    TLM_POINTS.inc();
    Ok((stats, ns))
}

/// Decode live-point `index` and simulate it — the instrumented
/// point-processing site shared by the runners. Returns the window
/// stats plus the point's processing metadata (timings and window
/// provenance) for the health monitor.
pub(crate) fn process_point(
    library: &LivePointLibrary,
    index: usize,
    program: &Program,
    machine: &MachineConfig,
    scratch: &mut DecodeScratch,
) -> Result<(WindowStats, PointMeta), CoreError> {
    let (lp, decode_ns) = decode_point(library, index, scratch)?;
    let (stats, simulate_ns) = simulate_point(&lp, program, machine)?;
    let meta = PointMeta {
        decode_ns,
        simulate_ns,
        detail_start: lp.window.detail_start,
        measure_start: lp.window.measure_start,
    };
    Ok((stats, meta))
}

/// Record that early termination fired with `count` points merged.
pub(crate) fn note_early_stop(count: u64) {
    TLM_EARLY_STOP_POINT.set(count as i64);
}

/// Cross-worker coordination for sharded parallel runs: the merged
/// progress estimator (early termination only — trajectories are
/// regenerated from the deterministic index-ordered replay), the
/// stop/reached flags, the merged count at the moment the target was
/// first reached (for exact overshoot accounting), and the first
/// worker fault.
pub(crate) struct ShardCoordinator<P> {
    pub progress: Mutex<P>,
    pub stop: AtomicBool,
    pub reached: AtomicBool,
    /// Merged point count when `reached` first flipped (0 = never).
    pub stop_n: AtomicU64,
    pub fault: Mutex<Option<CoreError>>,
}

impl<P: Default> ShardCoordinator<P> {
    pub fn new() -> Self {
        Self::with_progress(P::default())
    }
}

impl<P> ShardCoordinator<P> {
    pub fn with_progress(progress: P) -> Self {
        ShardCoordinator {
            progress: Mutex::new(progress),
            stop: AtomicBool::new(false),
            reached: AtomicBool::new(false),
            stop_n: AtomicU64::new(0),
            fault: Mutex::new(None),
        }
    }

    /// Acquire the shared progress estimator for a merge, timing how
    /// long the worker waited on the lock (`core.run.lock_wait_ns`).
    pub fn lock_progress(&self) -> std::sync::MutexGuard<'_, P> {
        let sw = Stopwatch::start();
        let guard = self.progress.lock().expect("progress lock");
        TLM_LOCK_WAIT_NS.add(sw.ns());
        TLM_MERGES.inc();
        guard
    }

    /// Record that the confidence target was first met with `count`
    /// points merged, and stop all shards if the policy says so.
    pub fn note_reached(&self, count: u64, policy: &RunPolicy) {
        if !self.reached.swap(true, Ordering::Relaxed) {
            note_early_stop(count);
            self.stop_n.store(count, Ordering::Relaxed);
        }
        if policy.stop_at_target {
            self.stop.store(true, Ordering::Relaxed);
        }
    }

    /// Record a worker fault and halt all shards.
    pub fn fail(&self, e: CoreError) {
        let mut guard = self.fault.lock().expect("fault lock");
        if guard.is_none() {
            *guard = Some(e);
        }
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Tear down: `(reached, merged count at first eligibility, first
    /// fault)`.
    pub fn finish(self) -> (bool, u64, Option<CoreError>) {
        (
            self.reached.load(Ordering::Relaxed),
            self.stop_n.load(Ordering::Relaxed),
            self.fault.into_inner().expect("fault lock"),
        )
    }
}

/// Exact early-termination overshoot: points processed past the count
/// at which the run first became eligible to stop.
pub(crate) fn overshoot_of(reached: bool, stop_n: u64, total: u64) -> u64 {
    if reached {
        total.saturating_sub(stop_n)
    } else {
        0
    }
}

/// Simulate one live-point under `machine`: reconstruct the warm
/// hierarchy and predictor, install the live-state memory image, run
/// detailed warming, and measure the window.
///
/// # Errors
///
/// * [`CoreError::BenchmarkMismatch`] when `program` is not the
///   benchmark the live-point was created from,
/// * [`CoreError::Cache`] when the machine's hierarchy exceeds the
///   live-point's recorded bounds,
/// * [`CoreError::BpredNotStored`] when no snapshot matches the
///   machine's predictor configuration.
pub fn simulate_live_point(
    lp: &LivePoint,
    program: &Program,
    machine: &MachineConfig,
) -> Result<WindowStats, CoreError> {
    if lp.benchmark != program.name() {
        return Err(CoreError::BenchmarkMismatch {
            expected: lp.benchmark.clone(),
            found: program.name().to_owned(),
        });
    }
    let hierarchy = lp.reconstruct_hierarchy(&machine.hierarchy)?;
    let bpred = lp.predictor_for(&machine.bpred)?;
    let memory = lp.live_state.build_memory();
    let oracle = Emulator::from_state(program, lp.live_state.arch.clone(), memory);
    let mut sim = DetailedSim::with_state(machine, program, oracle, hierarchy, bpred);
    sim.run(lp.window.warm_len()); // detailed warming (discarded)
    Ok(sim.run(lp.window.measure_len))
}

/// Termination policy for online runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunPolicy {
    /// Stop once the confidence interval's relative half-width falls to
    /// this value (the paper's ±3% is `0.03`).
    pub target_rel_err: f64,
    /// Confidence level (the paper's 99.7% is z = 3).
    pub confidence: Confidence,
    /// Hard cap on processed live-points (`None` = whole library).
    pub max_points: Option<usize>,
    /// Record a trajectory sample every this many points (for
    /// convergence plots; 0 disables the trajectory). Parallel runs
    /// regenerate the trajectory during the index-ordered replay after
    /// the join, so it is identical to the serial trajectory.
    pub trajectory_stride: usize,
    /// Parallel-run merge cadence K: each worker accumulates this many
    /// points into a thread-local estimator before merging into the
    /// shared state, so the global lock is taken once per K simulated
    /// points instead of once per point. Serial runs emit their
    /// sampling-health progress events on the same cadence.
    pub merge_stride: usize,
    /// kσ threshold for flagging a live-point's CPI as an outlier
    /// against the running estimate (sampling-health events only; does
    /// not affect the estimate itself).
    pub anomaly_sigma: f64,
    /// Whether reaching the confidence target terminates the run
    /// (`true`, the paper's online mode). With `false` the run
    /// processes every point (up to the cap) but still records *when*
    /// it first became eligible to stop — the doctor's
    /// wasted-points-past-convergence analysis needs that trajectory.
    pub stop_at_target: bool,
    /// How parallel runs assign live-points to workers: dynamic chunk
    /// claiming (the default) or the legacy static stride, retained for
    /// A/B benchmarking. Results are bit-identical in both modes.
    pub sched: SchedMode,
    /// Base chunk size for dynamic claiming, in live-points (`0` =
    /// auto: one [`merge_stride`](Self::merge_stride)). The scheduler
    /// clamps it so every worker owns a non-empty first chunk, and
    /// shrinks it adaptively as the run nears its confidence target.
    pub chunk: usize,
    /// Decode-ahead depth per worker, in live-points: how far LZSS
    /// decompression + DER decode may run ahead of detailed simulation
    /// within the current chunk (`0` = decode on demand).
    pub prefetch: usize,
}

impl Default for RunPolicy {
    fn default() -> Self {
        RunPolicy {
            target_rel_err: 0.03,
            confidence: Confidence::C99_7,
            max_points: None,
            trajectory_stride: 10,
            merge_stride: 8,
            anomaly_sigma: 3.0,
            stop_at_target: true,
            sched: SchedMode::DynamicChunk,
            chunk: 0,
            prefetch: 4,
        }
    }
}

impl RunPolicy {
    /// The dynamic scheduler's base chunk size: the explicit `chunk`
    /// knob, or one merge stride when left on auto.
    pub(crate) fn effective_chunk(&self) -> usize {
        if self.chunk > 0 {
            self.chunk
        } else {
            self.merge_stride.max(1)
        }
    }

    /// The shared chunk cursor for a dynamic-mode parallel run, `None`
    /// in static-stride mode.
    pub(crate) fn cursor(&self, limit: usize, threads: usize) -> Option<ChunkCursor> {
        (self.sched == SchedMode::DynamicChunk)
            .then(|| ChunkCursor::new(limit, threads, self.effective_chunk()))
    }
}

/// The running (or final) result of an online estimation.
#[derive(Debug, Clone)]
pub struct Estimate {
    estimator: OnlineEstimator,
    confidence: Confidence,
    processed: usize,
    reached_target: bool,
    trajectory: Vec<(u64, f64, f64)>,
}

impl Estimate {
    /// Assemble an estimate from runner internals (used by the sweep
    /// runner, which builds several estimates per pass).
    pub(crate) fn from_parts(
        estimator: OnlineEstimator,
        confidence: Confidence,
        processed: usize,
        reached_target: bool,
        trajectory: Vec<(u64, f64, f64)>,
    ) -> Self {
        Estimate { estimator, confidence, processed, reached_target, trajectory }
    }

    /// Estimated CPI (mean over processed live-points).
    pub fn mean(&self) -> f64 {
        self.estimator.mean()
    }

    /// Confidence-interval half-width at the policy's confidence.
    pub fn half_width(&self) -> f64 {
        self.estimator.half_width(self.confidence)
    }

    /// Half-width relative to the mean.
    pub fn relative_half_width(&self) -> f64 {
        self.estimator.relative_half_width(self.confidence)
    }

    /// Live-points processed.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Whether the run stopped because the confidence target was met
    /// (`false`: the library or the cap was exhausted first — the §6.2
    /// motivation for matched-pair comparison).
    pub fn reached_target(&self) -> bool {
        self.reached_target
    }

    /// The underlying estimator.
    pub fn estimator(&self) -> &OnlineEstimator {
        &self.estimator
    }

    /// Convergence trajectory: `(points_processed, mean, half_width)`
    /// samples taken every `trajectory_stride` points.
    pub fn trajectory(&self) -> &[(u64, f64, f64)] {
        &self.trajectory
    }
}

/// Random-order online runner (paper §6.1): processes the (already
/// shuffled) library in order, maintaining a running estimate whose
/// confidence improves as points accumulate, and stops as soon as the
/// target confidence is reached (never before 30 points).
#[derive(Debug)]
pub struct OnlineRunner<'l> {
    library: &'l LivePointLibrary,
    machine: MachineConfig,
}

impl<'l> OnlineRunner<'l> {
    /// Create a runner over `library` for `machine`.
    pub fn new(library: &'l LivePointLibrary, machine: MachineConfig) -> Self {
        OnlineRunner { library, machine }
    }

    /// The machine configuration being estimated.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    fn limit(&self, policy: &RunPolicy) -> usize {
        policy.max_points.unwrap_or(usize::MAX).min(self.library.len())
    }

    /// Serial run.
    ///
    /// # Example
    ///
    /// Estimate a benchmark's CPI from a freshly built library:
    ///
    /// ```
    /// use spectral_core::{CreationConfig, LivePointLibrary, OnlineRunner, RunPolicy};
    /// use spectral_uarch::MachineConfig;
    ///
    /// let program = spectral_workloads::tiny().build();
    /// let machine = MachineConfig::eight_way();
    /// let cfg = CreationConfig::for_machine(&machine).with_sample_size(6);
    /// let library = LivePointLibrary::create(&program, &cfg)?;
    ///
    /// let runner = OnlineRunner::new(&library, machine);
    /// let estimate = runner.run(&program, &RunPolicy::default())?;
    /// assert!(estimate.mean() > 0.0, "CPI is positive");
    /// assert!(estimate.processed() > 0);
    /// # Ok::<(), spectral_core::CoreError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates decode and simulation faults; an empty library is
    /// [`CoreError::EmptyLibrary`].
    pub fn run(&self, program: &Program, policy: &RunPolicy) -> Result<Estimate, CoreError> {
        self.run_recoverable(program, policy, &Recovery::none())
    }

    /// Serial run with crash recovery: checkpoint on a cadence, resume
    /// from a prior checkpoint, or both (see [`Recovery`]).
    ///
    /// Restored observations are replayed through the exact estimator
    /// push sequence an uninterrupted run would execute, so the
    /// resulting [`Estimate`] — mean, half-width, variance, trajectory
    /// — is **bit-identical** to an uninterrupted run under the same
    /// policy. Restored points skip decode/simulation (and therefore
    /// per-point health timing observations); progress events and
    /// early-termination checks see the same counts either way.
    ///
    /// # Errors
    ///
    /// Everything [`Self::run`] raises, plus [`CoreError::Checkpoint`]
    /// for an unreadable/corrupt/mismatched resume file and
    /// [`CoreError::Interrupted`] when a
    /// [`Recovery::abort_after`] drill fires.
    pub fn run_recoverable(
        &self,
        program: &Program,
        policy: &RunPolicy,
        recovery: &Recovery,
    ) -> Result<Estimate, CoreError> {
        if self.library.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let session = RecoverySession::start(
            recovery,
            CheckpointSpec {
                kind: RunKind::Online,
                benchmark: program.name().to_owned(),
                library_hash: self.library.content_hash(),
                policy_fp: policy_fingerprint(policy) ^ config_fingerprint(&self.machine),
                arity: 1,
            },
        )?;
        let _span = spectral_telemetry::span("run.online");
        let seq = spectral_telemetry::next_run_seq();
        let _profile = spectral_telemetry::run_scope(seq, "online", 1);
        let mut tl = WorkerTimeline::new(seq, "online", 0);
        let mut estimator = OnlineEstimator::new();
        let mut trajectory = Vec::new();
        let mut reached = false;
        let mut reached_at = 0u64;
        let limit = self.limit(policy);
        let mut processed = 0usize;
        let mut scratch = DecodeScratch::new();
        let mut monitor = HealthMonitor::new(seq, "online", 0, policy);
        let progress_stride = policy.merge_stride.max(1);
        let emit = |monitor: &HealthMonitor, est: &OnlineEstimator, overshoot: u64| {
            monitor.progress(
                "cpi",
                None,
                est.count(),
                est.mean(),
                est.half_width(policy.confidence),
                est.half_width(Confidence::C95),
                est.mean(),
                policy,
                overshoot,
            );
        };
        for i in 0..limit {
            let (cpi, fresh) = match session.restored(i) {
                Some(row) => (row[0], None),
                None => {
                    let (stats, meta) =
                        process_point(self.library, i, program, &self.machine, &mut scratch)?;
                    tl.note(ProfilePhase::Decode, meta.decode_ns);
                    tl.note(ProfilePhase::Simulate, meta.simulate_ns);
                    (stats.cpi(), Some(meta))
                }
            };
            estimator.push(cpi);
            if let Some(meta) = &fresh {
                monitor.observe(i as u64, cpi, meta);
                session.record(i, &[cpi])?;
            }
            processed += 1;
            if policy.trajectory_stride > 0 && processed.is_multiple_of(policy.trajectory_stride) {
                trajectory.push((
                    processed as u64,
                    estimator.mean(),
                    estimator.half_width(policy.confidence),
                ));
            }
            if processed.is_multiple_of(progress_stride) {
                emit(&monitor, &estimator, 0);
            }
            if !reached
                && estimator.count() >= MIN_SAMPLE_SIZE
                && estimator.relative_half_width(policy.confidence) <= policy.target_rel_err
            {
                reached = true;
                reached_at = estimator.count();
                note_early_stop(reached_at);
            }
            if reached && policy.stop_at_target {
                break;
            }
        }
        // Close the event stream on the final state: exact overshoot
        // accounting, and a final record when the run did not land
        // exactly on a stride boundary.
        let overshoot = overshoot_of(reached, reached_at, processed as u64);
        if !processed.is_multiple_of(progress_stride) || overshoot > 0 {
            emit(&monitor, &estimator, overshoot);
        }
        session.finish()?;
        Ok(Estimate {
            estimator,
            confidence: policy.confidence,
            processed,
            reached_target: reached,
            trajectory,
        })
    }

    /// Parallel run over `threads` workers (live-point independence
    /// makes this embarrassingly parallel; parallelism up to the sample
    /// size, §6).
    ///
    /// Scheduling follows [`RunPolicy::sched`]: by default workers
    /// claim contiguous index chunks from a shared [`ChunkCursor`]
    /// (work stealing with adaptive chunk sizing), decoding up to
    /// [`RunPolicy::prefetch`] points ahead of detailed simulation.
    /// Each worker accumulates observations into a thread-local batch,
    /// merging into the shared progress state every
    /// [`RunPolicy::merge_stride`] points; the early-termination check
    /// runs on the merged state at each merge point. Raw observations
    /// are logged per chunk and replayed in ascending index order into
    /// a fresh estimator after the join, so an exhaustive parallel run
    /// is **bit-identical** to the serial run — same mean, half-width,
    /// and trajectory — in both scheduling modes.
    ///
    /// # Errors
    ///
    /// Propagates the first worker fault; an empty library is
    /// [`CoreError::EmptyLibrary`].
    pub fn run_parallel(
        &self,
        program: &Program,
        policy: &RunPolicy,
        threads: usize,
    ) -> Result<Estimate, CoreError> {
        self.run_parallel_recoverable(program, policy, threads, &Recovery::none())
    }

    /// Parallel run with crash recovery (see [`Recovery`] and
    /// [`Self::run_recoverable`]).
    ///
    /// Restored indices are replayed into each worker's chunk log
    /// without decode or simulation; the index-ordered replay after
    /// the join then reduces restored and fresh observations exactly
    /// as an uninterrupted run would, so exhaustive resumed runs stay
    /// bit-identical to serial in both scheduling modes. (As with
    /// uninterrupted runs, *early-terminating* parallel runs stop at a
    /// scheduling-dependent point; the bit-identity guarantee is for
    /// the estimate over the same processed set.)
    ///
    /// # Errors
    ///
    /// Everything [`Self::run_parallel`] raises, plus
    /// [`CoreError::Checkpoint`] and [`CoreError::Interrupted`] as for
    /// [`Self::run_recoverable`].
    pub fn run_parallel_recoverable(
        &self,
        program: &Program,
        policy: &RunPolicy,
        threads: usize,
        recovery: &Recovery,
    ) -> Result<Estimate, CoreError> {
        if self.library.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let session = RecoverySession::start(
            recovery,
            CheckpointSpec {
                kind: RunKind::Online,
                benchmark: program.name().to_owned(),
                library_hash: self.library.content_hash(),
                policy_fp: policy_fingerprint(policy) ^ config_fingerprint(&self.machine),
                arity: 1,
            },
        )?;
        let _span = spectral_telemetry::span("run.online_parallel");
        let limit = self.limit(policy);
        let threads = threads.clamp(1, limit);
        let merge_stride = policy.merge_stride.max(1) as u64;
        let coord: ShardCoordinator<OnlineEstimator> = ShardCoordinator::new();
        let cursor = policy.cursor(limit, threads);
        // One run ordinal for the whole parallel run: every worker's
        // events carry it so a consumer can group them.
        let seq = spectral_telemetry::next_run_seq();
        let _profile = spectral_telemetry::run_scope(seq, "online", threads);

        let logs: Vec<ChunkLog<f64>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let coord = &coord;
                let cursor = cursor.as_ref();
                let session = &session;
                handles.push(scope.spawn(move || {
                    let wall = Stopwatch::start();
                    let mut busy = 0u64;
                    let mut log = ChunkLog::new();
                    let mut batch = OnlineEstimator::new();
                    let mut scratch = DecodeScratch::new();
                    let mut ring = PrefetchRing::new(policy.prefetch, worker);
                    let mut monitor = HealthMonitor::new(seq, "online", worker, policy);
                    let mut tl = WorkerTimeline::new(seq, "online", worker);
                    let mut queue = match cursor {
                        Some(c) => WorkQueue::chunked(c, worker),
                        None => WorkQueue::stride(worker, threads, limit),
                    };
                    'chunks: while !coord.stop.load(Ordering::Relaxed) {
                        let Some(chunk) = queue.next_chunk(&mut tl) else { break };
                        log.begin(chunk.start, chunk.len());
                        // Resumed runs never re-decode restored
                        // indices: the prefetch ring only sees the
                        // chunk's fresh remainder.
                        let mut pending = chunk.clone().filter(|&i| !session.knows(i));
                        for index in chunk {
                            if coord.stop.load(Ordering::Relaxed) {
                                ring.clear();
                                break 'chunks;
                            }
                            let cpi = if let Some(row) = session.restored(index) {
                                row[0]
                            } else {
                                if let Err(e) =
                                    ring.fill(self.library, &mut pending, &mut scratch, &mut tl)
                                {
                                    coord.fail(e);
                                    break 'chunks;
                                }
                                let (lp, decode_ns) =
                                    ring.pop().expect("ring holds the current index");
                                let (stats, simulate_ns) =
                                    match simulate_point(&lp, program, &self.machine) {
                                        Ok(r) => r,
                                        Err(e) => {
                                            coord.fail(e);
                                            break 'chunks;
                                        }
                                    };
                                tl.note(ProfilePhase::Simulate, simulate_ns);
                                let cpi = stats.cpi();
                                busy += decode_ns + simulate_ns;
                                let meta = PointMeta {
                                    decode_ns,
                                    simulate_ns,
                                    detail_start: lp.window.detail_start,
                                    measure_start: lp.window.measure_start,
                                };
                                monitor.observe(index as u64, cpi, &meta);
                                if let Err(e) = session.record(index, &[cpi]) {
                                    coord.fail(e);
                                    break 'chunks;
                                }
                                cpi
                            };
                            log.push(cpi);
                            batch.push(cpi);
                            if batch.count() >= merge_stride {
                                self.flush_batch(
                                    &mut batch, policy, coord, &monitor, cursor, &mut tl,
                                );
                            }
                        }
                    }
                    if batch.count() > 0 {
                        self.flush_batch(&mut batch, policy, coord, &monitor, cursor, &mut tl);
                    }
                    queue.finish();
                    crate::sched::note_worker_time(busy, wall.ns());
                    log
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker threads do not panic")).collect()
        });

        let (reached, stop_n, fault) = coord.finish();
        if let Some(e) = fault {
            return Err(e);
        }
        session.finish()?;
        // Deterministic reduction: replay every logged observation in
        // ascending index order into a fresh estimator, regenerating
        // the trajectory exactly as the serial loop would.
        let mut estimator = OnlineEstimator::new();
        let mut trajectory = Vec::new();
        let mut processed = 0usize;
        for cpi in ChunkLog::into_ordered(logs) {
            estimator.push(cpi);
            processed += 1;
            if policy.trajectory_stride > 0 && processed.is_multiple_of(policy.trajectory_stride) {
                trajectory.push((
                    processed as u64,
                    estimator.mean(),
                    estimator.half_width(policy.confidence),
                ));
            }
        }
        // Close the event stream with the definitive replayed estimate
        // and the exact overshoot past the stop point.
        let monitor = HealthMonitor::new(seq, "online", 0, policy);
        monitor.progress(
            "cpi",
            None,
            estimator.count(),
            estimator.mean(),
            estimator.half_width(policy.confidence),
            estimator.half_width(Confidence::C95),
            estimator.mean(),
            policy,
            overshoot_of(reached, stop_n, processed as u64),
        );
        Ok(Estimate {
            estimator,
            confidence: policy.confidence,
            processed,
            reached_target: reached,
            trajectory,
        })
    }

    /// Merge a worker's local batch into the shared progress estimator,
    /// emit a progress event, feed the adaptive chunk sizer, and run
    /// the early-termination check — everything but the merge itself on
    /// a lock-free snapshot.
    #[allow(clippy::too_many_arguments)]
    fn flush_batch(
        &self,
        batch: &mut OnlineEstimator,
        policy: &RunPolicy,
        coord: &ShardCoordinator<OnlineEstimator>,
        monitor: &HealthMonitor,
        cursor: Option<&ChunkCursor>,
        tl: &mut WorkerTimeline,
    ) {
        let snapshot = {
            let mut guard = tl.enter(ProfilePhase::MergeWait);
            let mut merged = coord.lock_progress();
            guard.switch(ProfilePhase::Merge);
            merged.merge(batch);
            *merged
        };
        *batch = OnlineEstimator::new();
        monitor.progress(
            "cpi",
            None,
            snapshot.count(),
            snapshot.mean(),
            snapshot.half_width(policy.confidence),
            snapshot.half_width(Confidence::C95),
            snapshot.mean(),
            policy,
            0,
        );
        let rel = snapshot.relative_half_width(policy.confidence);
        if policy.stop_at_target {
            if let Some(cursor) = cursor {
                cursor.note_rel_error(rel, policy.target_rel_err);
            }
        }
        if snapshot.count() >= MIN_SAMPLE_SIZE && rel <= policy.target_rel_err {
            coord.note_reached(snapshot.count(), policy);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::creation::CreationConfig;
    use spectral_workloads::tiny;

    fn setup() -> (spectral_isa::Program, LivePointLibrary) {
        let p = tiny().build();
        let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(35);
        let lib = LivePointLibrary::create(&p, &cfg).unwrap();
        (p, lib)
    }

    #[test]
    fn single_point_simulates() {
        let (p, lib) = setup();
        let lp = lib.get(0).unwrap();
        let stats = simulate_live_point(&lp, &p, &MachineConfig::eight_way()).unwrap();
        assert_eq!(stats.committed, lp.window.measure_len);
        assert!(stats.cpi() > 0.1 && stats.cpi() < 50.0, "cpi {}", stats.cpi());
    }

    #[test]
    fn wrong_program_rejected() {
        let (_, lib) = setup();
        let other = spectral_workloads::by_name("gzip-like").unwrap().build();
        let lp = lib.get(0).unwrap();
        assert!(matches!(
            simulate_live_point(&lp, &other, &MachineConfig::eight_way()),
            Err(CoreError::BenchmarkMismatch { .. })
        ));
    }

    #[test]
    fn oversized_hierarchy_rejected() {
        let (p, lib) = setup();
        let lp = lib.get(0).unwrap();
        let big = MachineConfig::sixteen_way(); // exceeds 8-way-only library
        assert!(simulate_live_point(&lp, &p, &big).is_err());
    }

    #[test]
    fn online_run_produces_estimate() {
        let (p, lib) = setup();
        let runner = OnlineRunner::new(&lib, MachineConfig::eight_way());
        let est =
            runner.run(&p, &RunPolicy { target_rel_err: 0.5, ..RunPolicy::default() }).unwrap();
        assert!(est.processed() >= MIN_SAMPLE_SIZE as usize);
        assert!(est.mean() > 0.0);
        assert!(est.reached_target(), "a 50% target should be reached quickly");
    }

    #[test]
    fn exhausting_library_reports_not_reached() {
        let (p, lib) = setup();
        let runner = OnlineRunner::new(&lib, MachineConfig::eight_way());
        let est =
            runner.run(&p, &RunPolicy { target_rel_err: 1e-9, ..RunPolicy::default() }).unwrap();
        assert_eq!(est.processed(), lib.len());
        assert!(!est.reached_target());
    }

    #[test]
    fn stop_at_target_false_runs_exhaustively() {
        let (p, lib) = setup();
        let runner = OnlineRunner::new(&lib, MachineConfig::eight_way());
        let policy =
            RunPolicy { target_rel_err: 0.5, stop_at_target: false, ..RunPolicy::default() };
        let est = runner.run(&p, &policy).unwrap();
        assert_eq!(est.processed(), lib.len(), "no early exit");
        assert!(est.reached_target(), "eligibility is still recorded");
        let par = runner.run_parallel(&p, &policy, 4).unwrap();
        assert_eq!(par.processed(), lib.len());
        assert!(par.reached_target());
    }

    #[test]
    fn parallel_matches_serial_when_exhaustive() {
        let (p, lib) = setup();
        let runner = OnlineRunner::new(&lib, MachineConfig::eight_way());
        let policy =
            RunPolicy { target_rel_err: 1e-9, trajectory_stride: 5, ..RunPolicy::default() };
        let serial = runner.run(&p, &policy).unwrap();
        for sched in [SchedMode::DynamicChunk, SchedMode::StaticStride] {
            let policy = RunPolicy { sched, ..policy };
            let parallel = runner.run_parallel(&p, &policy, 4).unwrap();
            assert_eq!(serial.processed(), parallel.processed());
            // Index-ordered replay makes exhaustive parallel runs
            // bit-identical to serial, not merely close.
            assert_eq!(
                serial.mean().to_bits(),
                parallel.mean().to_bits(),
                "{sched:?}: serial {} vs parallel {}",
                serial.mean(),
                parallel.mean()
            );
            assert_eq!(
                serial.estimator().variance().to_bits(),
                parallel.estimator().variance().to_bits(),
                "{sched:?} variance"
            );
            assert_eq!(serial.trajectory(), parallel.trajectory(), "{sched:?} trajectory");
            assert_eq!(serial.half_width().to_bits(), parallel.half_width().to_bits());
        }
    }

    #[test]
    fn trajectory_converges() {
        let (p, lib) = setup();
        let runner = OnlineRunner::new(&lib, MachineConfig::eight_way());
        let policy =
            RunPolicy { target_rel_err: 1e-9, trajectory_stride: 5, ..RunPolicy::default() };
        let est = runner.run(&p, &policy).unwrap();
        let traj = est.trajectory();
        assert!(traj.len() >= 3);
        // Half-widths should broadly shrink as n grows.
        let first_hw = traj[1].2; // skip the n=5 noise point
        let last_hw = traj.last().unwrap().2;
        assert!(last_hw <= first_hw, "confidence should tighten: first {first_hw}, last {last_hw}");
    }
}
