//! Sampling-health instrumentation for the runners: per-point anomaly
//! detection and merge-stride progress events.
//!
//! [`HealthMonitor`] bridges the statistical substrate
//! ([`spectral_stats::AnomalyDetector`]) to the telemetry event sink
//! ([`spectral_telemetry::ProgressEvent`] /
//! [`spectral_telemetry::AnomalyEvent`]). Each runner worker owns one
//! monitor; anomalies are judged against the worker's own observation
//! stream (no cross-shard synchronization on the hot path), while
//! progress records carry both the merged estimate and the worker's own
//! point count so the doctor can reconstruct per-shard lag.
//!
//! Whether a sink is subscribed is captured once at construction: an
//! unsubscribed monitor's [`observe`](HealthMonitor::observe) and
//! [`progress`](HealthMonitor::progress) are a single branch per call,
//! and with telemetry compiled out (`--no-default-features`) the whole
//! layer short-circuits the same way.

use spectral_stats::{AnomalyDetector, MIN_SAMPLE_SIZE};
use spectral_telemetry::{AnomalyEvent, ProgressEvent};

use crate::runner::RunPolicy;

/// Per-point processing metadata threaded from the decode/simulate
/// sites to the health monitor.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PointMeta {
    /// Decode (decompress + DER) wall-clock.
    pub decode_ns: u64,
    /// Detailed-simulation wall-clock (both machines for matched runs).
    pub simulate_ns: u64,
    /// Window provenance: sequence number where detailed warming begins.
    pub detail_start: u64,
    /// Window provenance: sequence number where measurement begins.
    pub measure_start: u64,
}

/// One worker's sampling-health state: an anomaly detector over its
/// observation stream and the emission plumbing for both event kinds.
#[derive(Debug)]
pub(crate) struct HealthMonitor {
    on: bool,
    seq: u64,
    run: &'static str,
    worker: usize,
    detector: AnomalyDetector,
    points: u64,
    busy_ns: u64,
}

impl HealthMonitor {
    /// A monitor for one worker of a `run`-kind runner. `seq` is the
    /// run ordinal (one [`spectral_telemetry::next_run_seq`] allocation
    /// per run, shared by all of its workers so a consumer can separate
    /// back-to-back runs in one sink). Subscription is sampled here,
    /// once: the monitor is live when either the JSONL event sink
    /// ([`spectral_telemetry::events_on`]) or the in-process run-summary
    /// tally ([`spectral_telemetry::run_summaries_on`], the registry's
    /// convergence-summary feed) is on.
    pub fn new(seq: u64, run: &'static str, worker: usize, policy: &RunPolicy) -> Self {
        HealthMonitor {
            on: spectral_telemetry::events_on() || spectral_telemetry::run_summaries_on(),
            seq,
            run,
            worker,
            detector: AnomalyDetector::new(policy.anomaly_sigma),
            points: 0,
            busy_ns: 0,
        }
    }

    /// Record one processed live-point; emits an anomaly event when any
    /// detector test fires. No-op (single branch) when unsubscribed.
    pub fn observe(&mut self, point: u64, cpi: f64, meta: &PointMeta) {
        if !self.on {
            return;
        }
        self.points += 1;
        self.busy_ns += meta.decode_ns + meta.simulate_ns;
        // Snapshot the running estimate *before* the observation is
        // folded in — the record shows what the detector compared
        // against.
        let mean = self.detector.cpi_estimator().mean();
        let std_dev = self.detector.cpi_estimator().std_dev();
        let health = self.detector.observe(cpi, meta.decode_ns, meta.simulate_ns);
        if !health.is_anomalous() {
            return;
        }
        let mut kinds: [&str; 3] = [""; 3];
        let mut n = 0;
        if health.cpi_sigmas.is_some() {
            kinds[n] = "cpi_outlier";
            n += 1;
        }
        if health.slow_decode {
            kinds[n] = "slow_decode";
            n += 1;
        }
        if health.slow_simulate {
            kinds[n] = "slow_simulate";
            n += 1;
        }
        AnomalyEvent {
            seq: self.seq,
            run: self.run,
            worker: self.worker,
            point,
            detail_start: meta.detail_start,
            measure_start: meta.measure_start,
            kinds: &kinds[..n],
            cpi,
            mean,
            std_dev,
            sigmas: health.cpi_sigmas.unwrap_or(0.0),
            decode_ns: meta.decode_ns,
            simulate_ns: meta.simulate_ns,
        }
        .emit();
    }

    /// Emit one merge-stride progress record for the merged estimate
    /// `(n, mean, half_width, half_width_95)`. `comparison_mean` is the
    /// relative-error denominator — the mean itself for absolute
    /// estimates, the base-machine mean for matched deltas. `overshoot`
    /// is the exact count of points processed past the stop condition
    /// (non-zero only on a run's closing record). No-op (single branch)
    /// when unsubscribed.
    #[allow(clippy::too_many_arguments)]
    pub fn progress(
        &self,
        metric: &'static str,
        config: Option<usize>,
        n: u64,
        mean: f64,
        half_width: f64,
        half_width_95: f64,
        comparison_mean: f64,
        policy: &RunPolicy,
        overshoot: u64,
    ) {
        if !self.on {
            return;
        }
        let rel = |hw: f64| if comparison_mean > 0.0 { hw / comparison_mean } else { f64::NAN };
        let rel_half_width = rel(half_width);
        let rel_half_width_95 = rel(half_width_95);
        let floor = n >= MIN_SAMPLE_SIZE;
        ProgressEvent {
            seq: self.seq,
            run: self.run,
            metric,
            worker: self.worker,
            config,
            n,
            mean,
            half_width,
            rel_half_width,
            target_rel_err: policy.target_rel_err,
            eligible: floor && rel_half_width <= policy.target_rel_err,
            rel_half_width_95,
            eligible_95: floor && rel_half_width_95 <= policy.target_rel_err,
            shard_points: self.points,
            shard_busy_ns: self.busy_ns,
            overshoot,
        }
        .emit();
    }
}
