//! Sharded LRU cache of decoded live-points.
//!
//! Decoding a live-point (positioned read + LZSS + DER) dominates
//! checkpoint processing time (Fig 8). Matched-pair and sweep runs
//! re-visit the same points — [`MatchedRunner`](crate::MatchedRunner)
//! decodes each point for both machine configurations when run twice,
//! and successive sweeps over one library decode everything again — so
//! the runners route every decode through this cache, keyed by
//! `(library content hash, point index)`. The content hash keys the
//! *bytes*, not the file, so two opens of the same library (or a v1
//! load and a dictionary-less v2 open of the same data) share entries.
//!
//! The cache holds `Arc<LivePoint>`s in 8 shards, each guarded by its
//! own mutex so parallel runner threads rarely contend. Eviction is
//! per-shard LRU by a monotonic touch tick. Capacity is global
//! (entries, not bytes), set by [`set_decode_cache_capacity`] or the
//! `SPECTRAL_DECODE_CACHE` environment variable; 0 disables caching
//! entirely.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use spectral_telemetry::Counter;

use crate::livepoint::LivePoint;

static TLM_HITS: Counter = Counter::new("core.lib.cache_hits");
static TLM_MISSES: Counter = Counter::new("core.lib.cache_misses");
static TLM_EVICTIONS: Counter = Counter::new("core.lib.cache_evictions");

const SHARDS: usize = 8;

/// Default capacity (decoded points) when `SPECTRAL_DECODE_CACHE` is
/// unset.
pub(crate) const DEFAULT_CAPACITY: usize = 256;

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<u64, (Arc<LivePoint>, u64)>,
    tick: u64,
}

/// A sharded LRU of decoded points. The process-wide instance lives
/// behind [`global`]; tests construct their own to stay isolated from
/// concurrently running runner tests.
#[derive(Debug)]
pub(crate) struct DecodeCache {
    shards: [Mutex<Shard>; SHARDS],
    capacity: AtomicUsize,
}

impl DecodeCache {
    pub(crate) fn new(capacity: usize) -> Self {
        DecodeCache {
            shards: std::array::from_fn(|_| Mutex::new(Shard::default())),
            capacity: AtomicUsize::new(capacity),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    pub(crate) fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        if capacity == 0 {
            self.clear();
        }
    }

    pub(crate) fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard").map.clear();
        }
    }

    /// Fetch `key`, refreshing its LRU tick on a hit.
    pub(crate) fn lookup(&self, key: u64) -> Option<Arc<LivePoint>> {
        if self.capacity() == 0 {
            return None;
        }
        let mut shard = self.shards[(key as usize) % SHARDS].lock().expect("cache shard");
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some((lp, touched)) => {
                *touched = tick;
                TLM_HITS.inc();
                Some(lp.clone())
            }
            None => {
                TLM_MISSES.inc();
                None
            }
        }
    }

    /// Insert `key`, evicting the shard's least-recently-touched entry
    /// when the shard is at capacity.
    pub(crate) fn insert(&self, key: u64, lp: Arc<LivePoint>) {
        let capacity = self.capacity();
        if capacity == 0 {
            return;
        }
        let per_shard = (capacity / SHARDS).max(1);
        let mut shard = self.shards[(key as usize) % SHARDS].lock().expect("cache shard");
        if shard.map.len() >= per_shard && !shard.map.contains_key(&key) {
            if let Some((&victim, _)) = shard.map.iter().min_by_key(|(_, (_, touched))| *touched) {
                shard.map.remove(&victim);
                TLM_EVICTIONS.inc();
            }
        }
        shard.tick += 1;
        let tick = shard.tick;
        shard.map.insert(key, (lp, tick));
    }
}

/// Cache key for point `index` of the library identified by
/// `content_hash`.
pub(crate) fn cache_key(content_hash: u32, index: usize) -> u64 {
    (u64::from(content_hash) << 32) | (index as u64 & 0xFFFF_FFFF)
}

/// The process-wide decode cache, sized from `SPECTRAL_DECODE_CACHE`
/// (entries; 0 disables) or [`DEFAULT_CAPACITY`].
pub(crate) fn global() -> &'static DecodeCache {
    static CACHE: OnceLock<DecodeCache> = OnceLock::new();
    CACHE.get_or_init(|| {
        let capacity = std::env::var("SPECTRAL_DECODE_CACHE")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        DecodeCache::new(capacity)
    })
}

/// Resize the process-wide decoded-point cache (entries; 0 disables and
/// drops all cached points). The runners consult the cache on every
/// decode, so this takes effect immediately.
pub fn set_decode_cache_capacity(capacity: usize) {
    global().set_capacity(capacity);
}

/// Current capacity of the process-wide decoded-point cache.
pub fn decode_cache_capacity() -> usize {
    global().capacity()
}

/// Drop every cached decoded point (capacity is unchanged).
pub fn clear_decode_cache() {
    global().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::creation::CreationConfig;
    use crate::library::LivePointLibrary;
    use spectral_uarch::MachineConfig;
    use spectral_workloads::tiny;

    fn point() -> Arc<LivePoint> {
        let p = tiny().build();
        let cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(12);
        let lib = LivePointLibrary::create(&p, &cfg).unwrap();
        Arc::new(lib.get(0).unwrap())
    }

    #[test]
    fn lookup_insert_and_evict() {
        let cache = DecodeCache::new(SHARDS); // one entry per shard
        let lp = point();
        let a = cache_key(0xABCD_0123, 0);
        // Same shard as `a`: differ by a multiple of SHARDS.
        let b = a + SHARDS as u64;
        assert!(cache.lookup(a).is_none());
        cache.insert(a, lp.clone());
        assert!(cache.lookup(a).is_some());
        // Inserting a second key into a full shard evicts the LRU one.
        cache.insert(b, lp.clone());
        assert!(cache.lookup(b).is_some());
        assert!(cache.lookup(a).is_none(), "LRU entry should have been evicted");
    }

    #[test]
    fn lru_refresh_protects_hot_entries() {
        let cache = DecodeCache::new(2 * SHARDS); // two entries per shard
        let lp = point();
        let a = cache_key(1, 0);
        let b = a + SHARDS as u64;
        let c = b + SHARDS as u64;
        cache.insert(a, lp.clone());
        cache.insert(b, lp.clone());
        assert!(cache.lookup(a).is_some()); // refresh a → b is now LRU
        cache.insert(c, lp.clone());
        assert!(cache.lookup(a).is_some());
        assert!(cache.lookup(b).is_none(), "stale entry should be the victim");
        assert!(cache.lookup(c).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = DecodeCache::new(0);
        let lp = point();
        cache.insert(7, lp);
        assert!(cache.lookup(7).is_none());
        cache.set_capacity(4);
        assert_eq!(cache.capacity(), 4);
    }

    #[test]
    fn cache_key_separates_libraries_and_indices() {
        assert_ne!(cache_key(1, 0), cache_key(2, 0));
        assert_ne!(cache_key(1, 0), cache_key(1, 1));
        assert_eq!(cache_key(3, 9), cache_key(3, 9));
    }
}
