//! Matched-pair comparative experiments over a live-point library
//! (paper §6.2).

use std::sync::atomic::Ordering;

use spectral_isa::Program;
use spectral_stats::{Confidence, MatchedPair, MIN_SAMPLE_SIZE};
use spectral_telemetry::{ProfilePhase, Stopwatch, WorkerTimeline};
use spectral_uarch::MachineConfig;

use crate::error::CoreError;
use crate::health::{HealthMonitor, PointMeta};
use crate::library::{DecodeScratch, LivePointLibrary};
use crate::resume::{
    config_fingerprint, policy_fingerprint, CheckpointSpec, Recovery, RecoverySession, RunKind,
};
use crate::runner::{
    decode_point, note_early_stop, overshoot_of, simulate_point, RunPolicy, ShardCoordinator,
};
use crate::sched::{ChunkLog, PrefetchRing, WorkQueue};

/// Emit one matched-run progress record from the merged pair state
/// (metric `delta_cpi`; relative error is the delta half-width over the
/// base-machine mean, matching the §6.2 termination rule). `overshoot`
/// is non-zero only on the run's closing record.
fn emit_progress(monitor: &HealthMonitor, pair: &MatchedPair, policy: &RunPolicy, overshoot: u64) {
    monitor.progress(
        "delta_cpi",
        None,
        pair.count(),
        pair.delta_mean(),
        pair.delta_half_width(policy.confidence),
        pair.delta_half_width(Confidence::C95),
        pair.base().mean(),
        policy,
        overshoot,
    );
}

/// Result of a matched-pair comparison between two machines.
#[derive(Debug, Clone)]
pub struct MatchedOutcome {
    pair: MatchedPair,
    confidence: spectral_stats::Confidence,
    processed: usize,
    reached_target: bool,
}

impl MatchedOutcome {
    /// Mean per-window CPI delta (`experiment − base`).
    pub fn delta_mean(&self) -> f64 {
        self.pair.delta_mean()
    }

    /// Confidence-interval half-width on the delta.
    pub fn delta_half_width(&self) -> f64 {
        self.pair.delta_half_width(self.confidence)
    }

    /// Relative CPI change of the experiment vs the base.
    pub fn relative_change(&self) -> f64 {
        self.pair.relative_change()
    }

    /// Whether the delta is statistically distinguishable from zero.
    pub fn significant(&self) -> bool {
        self.pair.significant(self.confidence)
    }

    /// Matched-pair sample-size reduction factor vs an absolute estimate
    /// at `rel_err` (the paper reports 3.5–150×).
    pub fn reduction_factor(&self, rel_err: f64) -> f64 {
        self.pair.reduction_factor(rel_err, self.confidence)
    }

    /// Live-point pairs processed.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Whether the run stopped at target confidence (rather than
    /// exhausting the library).
    pub fn reached_target(&self) -> bool {
        self.reached_target
    }

    /// The underlying paired estimators.
    pub fn pair(&self) -> &MatchedPair {
        &self.pair
    }
}

/// Runs the *same* live-points under a base and an experimental machine
/// and builds the confidence interval directly on the per-window delta —
/// which typically needs far fewer points than an absolute estimate,
/// protecting a fixed-size library from exhaustion (§6.2).
#[derive(Debug)]
pub struct MatchedRunner<'l> {
    library: &'l LivePointLibrary,
    base: MachineConfig,
    experiment: MachineConfig,
}

impl<'l> MatchedRunner<'l> {
    /// Create a matched runner; both machines must be within the
    /// library's bounds.
    pub fn new(
        library: &'l LivePointLibrary,
        base: MachineConfig,
        experiment: MachineConfig,
    ) -> Self {
        MatchedRunner { library, base, experiment }
    }

    /// Process pairs in library (shuffled) order until the delta's
    /// confidence interval shrinks below `policy.target_rel_err` of the
    /// base CPI, the cap is hit, or the library is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates decode/simulation faults; an empty library is
    /// [`CoreError::EmptyLibrary`].
    pub fn run(&self, program: &Program, policy: &RunPolicy) -> Result<MatchedOutcome, CoreError> {
        self.run_recoverable(program, policy, &Recovery::none())
    }

    /// The checkpoint identity for this runner's pairs: two `f64`s per
    /// live-point (base CPI, experiment CPI).
    fn spec(&self, program: &Program, policy: &RunPolicy) -> CheckpointSpec {
        CheckpointSpec {
            kind: RunKind::Matched,
            benchmark: program.name().to_owned(),
            library_hash: self.library.content_hash(),
            policy_fp: policy_fingerprint(policy)
                ^ config_fingerprint(&(&self.base, &self.experiment)),
            arity: 2,
        }
    }

    /// Serial matched-pair run with crash recovery (see [`Recovery`]
    /// and
    /// [`OnlineRunner::run_recoverable`](crate::OnlineRunner::run_recoverable)
    /// for the bit-identity argument — checkpoints store raw
    /// `(base, experiment)` CPI pairs and resume replays the exact
    /// push sequence).
    ///
    /// # Errors
    ///
    /// Everything [`Self::run`] raises, plus [`CoreError::Checkpoint`]
    /// and [`CoreError::Interrupted`].
    pub fn run_recoverable(
        &self,
        program: &Program,
        policy: &RunPolicy,
        recovery: &Recovery,
    ) -> Result<MatchedOutcome, CoreError> {
        if self.library.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let session = RecoverySession::start(recovery, self.spec(program, policy))?;
        let _span = spectral_telemetry::span("run.matched");
        let seq = spectral_telemetry::next_run_seq();
        let _profile = spectral_telemetry::run_scope(seq, "matched", 1);
        let mut tl = WorkerTimeline::new(seq, "matched", 0);
        let limit = policy.max_points.unwrap_or(usize::MAX).min(self.library.len());
        let mut pair = MatchedPair::new();
        let mut reached = false;
        let mut reached_at = 0u64;
        let mut processed = 0;
        let mut scratch = DecodeScratch::new();
        let mut monitor = HealthMonitor::new(seq, "matched", 0, policy);
        let progress_stride = policy.merge_stride.max(1);
        for i in 0..limit {
            let (base_cpi, exp_cpi) = match session.restored(i) {
                Some(row) => (row[0], row[1]),
                None => {
                    let (lp, decode_ns) = decode_point(self.library, i, &mut scratch)?;
                    let (base, base_ns) = simulate_point(&lp, program, &self.base)?;
                    let (exp, exp_ns) = simulate_point(&lp, program, &self.experiment)?;
                    tl.note(ProfilePhase::Decode, decode_ns);
                    tl.note(ProfilePhase::Simulate, base_ns + exp_ns);
                    // The anomaly stream watches the base-machine CPI;
                    // the point's simulate cost covers both machines.
                    monitor.observe(
                        i as u64,
                        base.cpi(),
                        &PointMeta {
                            decode_ns,
                            simulate_ns: base_ns + exp_ns,
                            detail_start: lp.window.detail_start,
                            measure_start: lp.window.measure_start,
                        },
                    );
                    session.record(i, &[base.cpi(), exp.cpi()])?;
                    (base.cpi(), exp.cpi())
                }
            };
            pair.push(base_cpi, exp_cpi);
            processed += 1;
            if processed % progress_stride == 0 {
                emit_progress(&monitor, &pair, policy, 0);
            }
            let base_mean = pair.base().mean();
            if !reached
                && pair.count() >= MIN_SAMPLE_SIZE
                && base_mean > 0.0
                && pair.delta_half_width(policy.confidence) <= policy.target_rel_err * base_mean
            {
                reached = true;
                reached_at = pair.count();
                note_early_stop(reached_at);
            }
            if reached && policy.stop_at_target {
                break;
            }
        }
        let overshoot = overshoot_of(reached, reached_at, processed as u64);
        if processed % progress_stride != 0 || overshoot > 0 {
            emit_progress(&monitor, &pair, policy, overshoot);
        }
        session.finish()?;
        Ok(MatchedOutcome {
            pair,
            confidence: policy.confidence,
            processed,
            reached_target: reached,
        })
    }

    /// Parallel matched-pair run on the scheduling machinery of
    /// [`OnlineRunner::run_parallel`](crate::OnlineRunner::run_parallel):
    /// workers claim index chunks per [`RunPolicy::sched`], decode each
    /// live-point once (up to [`RunPolicy::prefetch`] points ahead),
    /// simulate it under both machines, and merge thread-local
    /// [`MatchedPair`] batches into the shared state every
    /// [`RunPolicy::merge_stride`] pairs; the early-termination check
    /// runs on the merged delta interval. Raw `(base, experiment)` CPI
    /// pairs are logged per chunk and replayed in ascending index order
    /// after the join, so an exhaustive run is bit-identical to serial.
    ///
    /// # Errors
    ///
    /// Propagates the first worker fault; an empty library is
    /// [`CoreError::EmptyLibrary`].
    pub fn run_parallel(
        &self,
        program: &Program,
        policy: &RunPolicy,
        threads: usize,
    ) -> Result<MatchedOutcome, CoreError> {
        self.run_parallel_recoverable(program, policy, threads, &Recovery::none())
    }

    /// Parallel matched-pair run with crash recovery (see [`Recovery`]
    /// and
    /// [`OnlineRunner::run_parallel_recoverable`](crate::OnlineRunner::run_parallel_recoverable)).
    ///
    /// # Errors
    ///
    /// Everything [`Self::run_parallel`] raises, plus
    /// [`CoreError::Checkpoint`] and [`CoreError::Interrupted`].
    pub fn run_parallel_recoverable(
        &self,
        program: &Program,
        policy: &RunPolicy,
        threads: usize,
        recovery: &Recovery,
    ) -> Result<MatchedOutcome, CoreError> {
        if self.library.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let session = RecoverySession::start(recovery, self.spec(program, policy))?;
        let _span = spectral_telemetry::span("run.matched_parallel");
        let limit = policy.max_points.unwrap_or(usize::MAX).min(self.library.len());
        let threads = threads.clamp(1, limit);
        let merge_stride = policy.merge_stride.max(1) as u64;
        let coord: ShardCoordinator<MatchedPair> = ShardCoordinator::new();
        let cursor = policy.cursor(limit, threads);

        let flush = |batch: &mut MatchedPair, monitor: &HealthMonitor, tl: &mut WorkerTimeline| {
            let snapshot = {
                let mut guard = tl.enter(ProfilePhase::MergeWait);
                let mut merged = coord.lock_progress();
                guard.switch(ProfilePhase::Merge);
                merged.merge(batch);
                *merged
            };
            *batch = MatchedPair::new();
            emit_progress(monitor, &snapshot, policy, 0);
            let base_mean = snapshot.base().mean();
            if base_mean > 0.0 {
                let rel = snapshot.delta_half_width(policy.confidence) / base_mean;
                if policy.stop_at_target {
                    if let Some(cursor) = &cursor {
                        cursor.note_rel_error(rel, policy.target_rel_err);
                    }
                }
                if snapshot.count() >= MIN_SAMPLE_SIZE && rel <= policy.target_rel_err {
                    coord.note_reached(snapshot.count(), policy);
                }
            }
        };

        let seq = spectral_telemetry::next_run_seq();
        let _profile = spectral_telemetry::run_scope(seq, "matched", threads);
        let logs: Vec<ChunkLog<(f64, f64)>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let coord = &coord;
                let cursor = cursor.as_ref();
                let flush = &flush;
                let session = &session;
                handles.push(scope.spawn(move || {
                    let wall = Stopwatch::start();
                    let mut busy = 0u64;
                    let mut log = ChunkLog::new();
                    let mut batch = MatchedPair::new();
                    let mut scratch = DecodeScratch::new();
                    let mut ring = PrefetchRing::new(policy.prefetch, worker);
                    let mut monitor = HealthMonitor::new(seq, "matched", worker, policy);
                    let mut tl = WorkerTimeline::new(seq, "matched", worker);
                    let mut queue = match cursor {
                        Some(c) => WorkQueue::chunked(c, worker),
                        None => WorkQueue::stride(worker, threads, limit),
                    };
                    'chunks: while !coord.stop.load(Ordering::Relaxed) {
                        let Some(chunk) = queue.next_chunk(&mut tl) else { break };
                        log.begin(chunk.start, chunk.len());
                        // Restored indices never re-decode; the
                        // prefetch ring sees only the fresh remainder.
                        let mut pending = chunk.clone().filter(|&i| !session.knows(i));
                        for index in chunk {
                            if coord.stop.load(Ordering::Relaxed) {
                                ring.clear();
                                break 'chunks;
                            }
                            let (base, exp) = if let Some(row) = session.restored(index) {
                                (row[0], row[1])
                            } else {
                                if let Err(e) =
                                    ring.fill(self.library, &mut pending, &mut scratch, &mut tl)
                                {
                                    coord.fail(e);
                                    break 'chunks;
                                }
                                let (lp, decode_ns) =
                                    ring.pop().expect("ring holds the current index");
                                let outcome = simulate_point(&lp, program, &self.base).and_then(
                                    |(base, base_ns)| {
                                        let (exp, exp_ns) =
                                            simulate_point(&lp, program, &self.experiment)?;
                                        Ok((base.cpi(), exp.cpi(), base_ns + exp_ns))
                                    },
                                );
                                let (base, exp, simulate_ns) = match outcome {
                                    Ok(r) => r,
                                    Err(e) => {
                                        coord.fail(e);
                                        break 'chunks;
                                    }
                                };
                                tl.note(ProfilePhase::Simulate, simulate_ns);
                                busy += decode_ns + simulate_ns;
                                let meta = PointMeta {
                                    decode_ns,
                                    simulate_ns,
                                    detail_start: lp.window.detail_start,
                                    measure_start: lp.window.measure_start,
                                };
                                monitor.observe(index as u64, base, &meta);
                                if let Err(e) = session.record(index, &[base, exp]) {
                                    coord.fail(e);
                                    break 'chunks;
                                }
                                (base, exp)
                            };
                            log.push((base, exp));
                            batch.push(base, exp);
                            if batch.count() >= merge_stride {
                                flush(&mut batch, &monitor, &mut tl);
                            }
                        }
                    }
                    if batch.count() > 0 {
                        flush(&mut batch, &monitor, &mut tl);
                    }
                    queue.finish();
                    crate::sched::note_worker_time(busy, wall.ns());
                    log
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker threads do not panic")).collect()
        });

        let (reached, stop_n, fault) = coord.finish();
        if let Some(e) = fault {
            return Err(e);
        }
        session.finish()?;
        // Deterministic reduction: replay pairs in ascending index
        // order, exactly as the serial loop pushes them.
        let mut pair = MatchedPair::new();
        for (base, exp) in ChunkLog::into_ordered(logs) {
            pair.push(base, exp);
        }
        // Close the event stream with the replayed state and the exact
        // overshoot past the stop point.
        let monitor = HealthMonitor::new(seq, "matched", 0, policy);
        emit_progress(&monitor, &pair, policy, overshoot_of(reached, stop_n, pair.count()));
        let processed = pair.count() as usize;
        Ok(MatchedOutcome {
            pair,
            confidence: policy.confidence,
            processed,
            reached_target: reached,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::creation::CreationConfig;
    use spectral_workloads::tiny;

    fn setup() -> (Program, LivePointLibrary) {
        let p = tiny().build();
        // A library that serves multiple configurations: bound by the
        // default (16-way-sized) maxima with both predictors stored.
        // Short unit/warm lengths so the tiny test benchmark can host
        // enough windows for the n >= 30 floor.
        let mut cfg = CreationConfig::default().with_sample_size(40);
        cfg.unit_len = 500;
        cfg.warm_len = 1500;
        let lib = LivePointLibrary::create(&p, &cfg).unwrap();
        (p, lib)
    }

    #[test]
    fn identical_machines_have_zero_delta() {
        let (p, lib) = setup();
        let m = MachineConfig::eight_way();
        let runner = MatchedRunner::new(&lib, m.clone(), m);
        let out = runner.run(&p, &RunPolicy::default()).unwrap();
        assert_eq!(out.delta_mean(), 0.0);
        assert!(!out.significant());
        assert!(out.reached_target(), "zero-variance delta converges immediately");
        assert_eq!(out.processed(), MIN_SAMPLE_SIZE as usize);
    }

    #[test]
    fn slower_memory_detected_as_significant() {
        // Needs a benchmark that actually reaches memory: a 2 MB
        // pointer chase blows through the 1 MB L2.
        use spectral_workloads::{Benchmark, Kernel, Schedule};
        let bench = Benchmark::new(
            "chase",
            "memory-bound matched-pair fixture",
            vec![Kernel::PointerChase { nodes: 1 << 18, hops: 600 }],
            Schedule::Phased,
            150_000,
            3,
        );
        let p = bench.build();
        let mut cfg = CreationConfig::default().with_sample_size(40);
        cfg.unit_len = 500;
        cfg.warm_len = 1500;
        let lib = LivePointLibrary::create(&p, &cfg).unwrap();
        let base = MachineConfig::eight_way();
        let slow = MachineConfig::eight_way().with_mem_latency(400);
        let runner = MatchedRunner::new(&lib, base, slow);
        let out = runner.run(&p, &RunPolicy::default()).unwrap();
        assert!(out.delta_mean() > 0.0, "4x memory latency must cost CPI");
        assert!(out.significant(), "delta {} hw {}", out.delta_mean(), out.delta_half_width());
    }

    #[test]
    fn matched_pair_needs_fewer_points_than_absolute() {
        let (p, lib) = setup();
        let base = MachineConfig::eight_way();
        // A small, uniform change: slightly slower L2.
        let mut exp = MachineConfig::eight_way();
        exp.lat.l2 = 14;
        let runner = MatchedRunner::new(&lib, base, exp);
        let out =
            runner.run(&p, &RunPolicy { target_rel_err: 0.01, ..RunPolicy::default() }).unwrap();
        // The reduction factor vs an absolute estimate should exceed 1
        // for a uniform-effect change (the paper reports 3.5–150x).
        let f = out.reduction_factor(0.01);
        assert!(f >= 1.0, "reduction factor {f}");
    }

    #[test]
    fn sixteen_way_comparison_within_default_library() {
        let (p, lib) = setup();
        let runner =
            MatchedRunner::new(&lib, MachineConfig::eight_way(), MachineConfig::sixteen_way());
        let out =
            runner.run(&p, &RunPolicy { max_points: Some(32), ..RunPolicy::default() }).unwrap();
        assert!(out.processed() >= 30);
        // The 16-way machine should not be slower on average.
        assert!(out.relative_change() < 0.25, "relative change {}", out.relative_change());
    }
}
