//! Dynamic chunk-claiming scheduler and decode-ahead prefetch for the
//! parallel runners.
//!
//! Live-points are mutually independent, so the paper's "process in any
//! order, in parallel" guarantee (§6) leaves the *assignment* of points
//! to workers entirely up to us. The original static stride
//! (`index += threads`) pins every point to a lane at spawn time: one
//! slow point — exactly the decode/simulate latency tails the health
//! layer flags — stalls its whole lane while the other workers idle at
//! the join. This module replaces that with:
//!
//! * [`ChunkCursor`] — an atomic claim cursor over the library index
//!   space. Each worker starts on a pre-assigned chunk (so every worker
//!   owns work even on heavily loaded hosts) and then *steals* further
//!   chunks from the shared cursor as it drains its own. Chunk size
//!   adapts: large while the run is far from its confidence target,
//!   shrinking toward a single point as the stop condition approaches,
//!   so early-termination overshoot collapses from up to
//!   `threads × merge_stride` points to roughly one chunk.
//! * [`PrefetchRing`] — a small per-worker ring of pre-decoded
//!   live-points (reusing the per-thread [`DecodeScratch`] pool), so
//!   LZSS decompression + DER decode runs ahead of detailed simulation
//!   in batches instead of strictly interleaving with it.
//! * [`ChunkLog`] — per-chunk observation logs. Workers record raw
//!   observations per claimed chunk; after the join the runner replays
//!   every observation in ascending index order into a fresh
//!   estimator. Exhaustive parallel runs are therefore **bit-identical**
//!   to serial runs (same pushes, same order — not merely equal up to
//!   summation order), under both scheduling modes.
//!
//! Everything is instrumented: steal counts, chunk sizes, prefetch-ring
//! occupancy, and per-worker busy/idle time land in the metrics
//! registry (`core.sched.*`) and flow into run manifests via
//! [`spectral_telemetry::snapshot`]. When a trace sink is installed
//! ([`spectral_telemetry::tracing`]), the same quantities are also
//! sampled as per-worker `{"type":"sched"}` JSONL records, which the
//! perfetto exporter renders as counter tracks next to the span
//! timeline.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use spectral_telemetry::{Counter, Histogram, ProfilePhase, WorkerTimeline};

use crate::error::CoreError;
use crate::library::{DecodeScratch, LivePointLibrary};
use crate::livepoint::LivePoint;
use crate::runner::decode_point;

// Scheduler metrics: how work moved between lanes (steals, chunk
// sizes), how far decode ran ahead of simulation (ring occupancy), and
// where worker wall-clock went (busy vs idle). All no-ops without the
// `telemetry` feature.
static TLM_STEALS: Counter = Counter::new("core.sched.steals");
static TLM_CHUNKS: Counter = Counter::new("core.sched.chunks");
static TLM_CHUNK_POINTS: Histogram = Histogram::new("core.sched.chunk_points");
static TLM_STEALS_PER_WORKER: Histogram = Histogram::new("core.sched.steals_per_worker");
static TLM_PREFETCH_OCCUPANCY: Histogram = Histogram::new("core.sched.prefetch_occupancy");
static TLM_BUSY_NS: Counter = Counter::new("core.sched.busy_ns");
static TLM_IDLE_NS: Counter = Counter::new("core.sched.idle_ns");

/// How a parallel runner assigns live-points to workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedMode {
    /// Static striding: worker `w` owns indices `w, w+T, w+2T, …`,
    /// fixed at spawn time. Retained for A/B benchmarking against the
    /// dynamic scheduler; results are bit-identical in both modes.
    StaticStride,
    /// Dynamic chunk claiming over a shared [`ChunkCursor`]: workers
    /// steal chunks as they drain their own, and chunk size shrinks as
    /// the run approaches its confidence target.
    DynamicChunk,
}

/// Shared atomic chunk cursor: carves `0..limit` into contiguous,
/// non-overlapping chunks claimed by competing workers.
///
/// The first `threads` chunks are pre-assigned (worker `w` owns
/// `[w·base, (w+1)·base)`), guaranteeing every worker participates even
/// when one lane races ahead; everything past `threads × base` is
/// claimed dynamically. Claims tile the index space exactly once
/// regardless of interleaving or adaptive resizing — the property the
/// deterministic index-ordered reduction (and a proptest) relies on.
#[derive(Debug)]
pub struct ChunkCursor {
    limit: usize,
    base: usize,
    /// Current adaptive chunk size for dynamic claims.
    chunk: AtomicUsize,
    /// Next unclaimed index (starts past the pre-assigned chunks).
    cursor: AtomicUsize,
}

impl ChunkCursor {
    /// A cursor over `0..limit` for `threads` workers with base chunk
    /// size `chunk`. The base is clamped to `limit / threads` (min 1)
    /// so each worker's pre-assigned first chunk is non-empty.
    pub fn new(limit: usize, threads: usize, chunk: usize) -> Self {
        let threads = threads.clamp(1, limit.max(1));
        let base = chunk.max(1).min((limit / threads).max(1));
        ChunkCursor {
            limit,
            base,
            chunk: AtomicUsize::new(base),
            cursor: AtomicUsize::new((threads * base).min(limit)),
        }
    }

    /// Base (maximum) chunk size after clamping.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Worker `w`'s pre-assigned first chunk: `[w·base, (w+1)·base)`.
    pub fn first(&self, worker: usize) -> Range<usize> {
        let start = (worker * self.base).min(self.limit);
        start..(start + self.base).min(self.limit)
    }

    /// Claim the next unowned chunk (a steal from the shared tail), or
    /// `None` once the index space is exhausted.
    pub fn claim(&self) -> Option<Range<usize>> {
        let size = self.chunk.load(Ordering::Relaxed).max(1);
        let start = self.cursor.fetch_add(size, Ordering::Relaxed);
        if start >= self.limit {
            return None;
        }
        Some(start..(start + size).min(self.limit))
    }

    /// Adapt the dynamic chunk size to the run's distance from its
    /// confidence target: full base size while the relative half-width
    /// is at least twice the target, shrinking linearly to a single
    /// point as it closes in. Called from the runners' merge points, so
    /// the cost is one relaxed store per `merge_stride` points.
    pub fn note_rel_error(&self, rel_half_width: f64, target: f64) {
        if !(rel_half_width.is_finite() && target > 0.0) {
            return;
        }
        let ratio = rel_half_width / target;
        let size = if ratio >= 2.0 {
            self.base
        } else {
            // ratio in (−∞, 2): one base-sized chunk of headroom maps
            // linearly onto [1, base].
            ((self.base as f64 * (ratio - 1.0)).ceil()).clamp(1.0, self.base as f64) as usize
        };
        self.chunk.store(size, Ordering::Relaxed);
    }
}

/// A worker's source of index chunks: its pre-assigned stride (static
/// mode) or the shared cursor (dynamic mode). Also owns the worker's
/// steal count for the per-worker telemetry histogram.
pub(crate) enum WorkQueue<'a> {
    /// `next, next+step, …` below `limit`, one index per "chunk".
    Stride { worker: usize, next: usize, step: usize, limit: usize },
    /// Pre-assigned first chunk, then claims from the shared cursor.
    Chunked { cursor: &'a ChunkCursor, worker: usize, first: bool, steals: u64 },
}

impl<'a> WorkQueue<'a> {
    pub fn stride(worker: usize, threads: usize, limit: usize) -> Self {
        WorkQueue::Stride { worker, next: worker, step: threads, limit }
    }

    pub fn chunked(cursor: &'a ChunkCursor, worker: usize) -> Self {
        WorkQueue::Chunked { cursor, worker, first: true, steals: 0 }
    }

    /// The next chunk of indices this worker owns, or `None` when its
    /// share of the library is exhausted. The claim (stride math or
    /// shared-cursor atomics) is attributed to the worker timeline's
    /// `claim` phase.
    pub fn next_chunk(&mut self, tl: &mut WorkerTimeline) -> Option<Range<usize>> {
        let _claim = tl.enter(ProfilePhase::Claim);
        let (chunk, worker, steals) = match self {
            WorkQueue::Stride { worker, next, step, limit } => {
                if *next >= *limit {
                    return None;
                }
                let start = *next;
                *next += *step;
                (start..start + 1, *worker, None)
            }
            WorkQueue::Chunked { cursor, worker, first, steals } => {
                let chunk = if *first {
                    *first = false;
                    cursor.first(*worker)
                } else {
                    let chunk = cursor.claim()?;
                    *steals += 1;
                    TLM_STEALS.inc();
                    chunk
                };
                if chunk.is_empty() {
                    return None;
                }
                (chunk, *worker, Some(*steals))
            }
        };
        TLM_CHUNKS.inc();
        TLM_CHUNK_POINTS.record(chunk.len() as u64);
        if spectral_telemetry::tracing() {
            spectral_telemetry::trace_sched(worker, Some(chunk.len() as u64), steals, None);
        }
        Some(chunk)
    }

    /// Close out the worker's scheduling telemetry (steal histogram).
    pub fn finish(&self) {
        if let WorkQueue::Chunked { steals, .. } = self {
            TLM_STEALS_PER_WORKER.record(*steals);
        }
    }
}

/// Record a worker's wall-clock split for the busy/idle metrics: `busy`
/// is time spent decoding + simulating, the rest of `wall` is idle
/// (lock waits, scheduling, joins).
pub(crate) fn note_worker_time(busy_ns: u64, wall_ns: u64) {
    TLM_BUSY_NS.add(busy_ns);
    TLM_IDLE_NS.add(wall_ns.saturating_sub(busy_ns));
}

/// Bounded per-worker ring of pre-decoded live-points: decode runs up
/// to `depth` points ahead of detailed simulation within the current
/// chunk, so decompression works in batches against warm scratch
/// buffers instead of strictly alternating with simulation.
pub(crate) struct PrefetchRing {
    ring: VecDeque<(Arc<LivePoint>, u64)>,
    depth: usize,
    worker: usize,
    /// Last occupancy sampled into the trace, so an idle steady state
    /// doesn't flood the sink with identical counter records.
    last_traced: Option<u64>,
}

impl PrefetchRing {
    /// Worker `worker`'s ring, decoding up to `depth` points ahead (`0`
    /// behaves as `1`: decode-on-demand).
    pub fn new(depth: usize, worker: usize) -> Self {
        PrefetchRing {
            ring: VecDeque::with_capacity(depth.max(1)),
            depth: depth.max(1),
            worker,
            last_traced: None,
        }
    }

    /// Top the ring up from the front of `pending` (the undecoded
    /// remainder of the current chunk — resumed runs pass the chunk
    /// range with already-restored indices filtered out), recording
    /// the resulting occupancy. Decode order is index order, so
    /// consumption order is deterministic.
    ///
    /// Timeline attribution: when the ring is empty on entry the
    /// simulator is stalled on the first decode (`prefetch_wait`);
    /// decodes past the first are decode-ahead work (`decode`). Both
    /// reuse the decode duration the cache layer already measured, so
    /// profiling adds no clock read here.
    pub fn fill(
        &mut self,
        library: &LivePointLibrary,
        pending: &mut impl Iterator<Item = usize>,
        scratch: &mut DecodeScratch,
        tl: &mut WorkerTimeline,
    ) -> Result<(), CoreError> {
        let mut stalled = self.ring.is_empty();
        while self.ring.len() < self.depth {
            let Some(index) = pending.next() else { break };
            let decoded = decode_point(library, index, scratch)?;
            let phase = if stalled { ProfilePhase::PrefetchWait } else { ProfilePhase::Decode };
            tl.note(phase, decoded.1);
            stalled = false;
            self.ring.push_back(decoded);
        }
        let occupancy = self.ring.len() as u64;
        TLM_PREFETCH_OCCUPANCY.record(occupancy);
        if spectral_telemetry::tracing() && self.last_traced != Some(occupancy) {
            self.last_traced = Some(occupancy);
            spectral_telemetry::trace_sched(self.worker, None, None, Some(occupancy));
        }
        Ok(())
    }

    /// The oldest pre-decoded point `(live-point, decode_ns)`.
    pub fn pop(&mut self) -> Option<(Arc<LivePoint>, u64)> {
        self.ring.pop_front()
    }

    /// Drop decoded-but-unsimulated points (early termination).
    pub fn clear(&mut self) {
        self.ring.clear();
    }
}

/// Per-chunk observation log: each claimed chunk's raw observations in
/// processing (= index) order, keyed by the chunk's start index.
///
/// Chunks from all workers are disjoint, so sorting the combined logs
/// by start index and replaying linearly reproduces the exact serial
/// push sequence — the mechanism behind bit-identical exhaustive runs.
pub(crate) struct ChunkLog<O> {
    chunks: Vec<(usize, Vec<O>)>,
}

impl<O> ChunkLog<O> {
    pub fn new() -> Self {
        ChunkLog { chunks: Vec::new() }
    }

    /// Open a log segment for the chunk starting at `start`.
    pub fn begin(&mut self, start: usize, capacity: usize) {
        self.chunks.push((start, Vec::with_capacity(capacity)));
    }

    /// Append one observation to the current chunk's segment.
    pub fn push(&mut self, obs: O) {
        self.chunks.last_mut().expect("begin() opens a segment before push()").1.push(obs);
    }

    /// Merge per-worker logs into one observation stream in ascending
    /// index order (the fixed reduction order).
    pub fn into_ordered(logs: Vec<ChunkLog<O>>) -> impl Iterator<Item = O> {
        let mut chunks: Vec<(usize, Vec<O>)> = logs.into_iter().flat_map(|l| l.chunks).collect();
        chunks.sort_by_key(|&(start, _)| start);
        chunks.into_iter().flat_map(|(_, obs)| obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn claimed_indices(cursor: &ChunkCursor, threads: usize) -> Vec<usize> {
        let mut seen = Vec::new();
        for w in 0..threads {
            seen.extend(cursor.first(w));
        }
        while let Some(chunk) = cursor.claim() {
            seen.extend(chunk);
        }
        seen
    }

    #[test]
    fn chunks_tile_the_index_space_exactly_once() {
        for (limit, threads, chunk) in
            [(35, 4, 8), (24, 4, 8), (1, 1, 8), (7, 8, 3), (100, 3, 1), (64, 2, 64)]
        {
            let cursor = ChunkCursor::new(limit, threads, chunk);
            let mut seen = claimed_indices(&cursor, threads.min(limit));
            seen.sort_unstable();
            let expected: Vec<usize> = (0..limit).collect();
            assert_eq!(seen, expected, "limit {limit} threads {threads} chunk {chunk}");
        }
    }

    #[test]
    fn every_worker_gets_a_nonempty_first_chunk() {
        // 35 points, 4 workers, oversized chunk request: the base is
        // clamped so all four pre-assigned chunks are non-empty.
        let cursor = ChunkCursor::new(35, 4, 64);
        assert_eq!(cursor.base(), 8);
        for w in 0..4 {
            assert!(!cursor.first(w).is_empty(), "worker {w} starved");
        }
    }

    #[test]
    fn chunk_size_shrinks_near_the_target() {
        let cursor = ChunkCursor::new(1000, 2, 32);
        assert_eq!(cursor.claim().map(|c| c.len()), Some(32));
        // Far from target: full base size.
        cursor.note_rel_error(0.30, 0.03);
        assert_eq!(cursor.claim().map(|c| c.len()), Some(32));
        // Half-way into the last doubling: linear shrink.
        cursor.note_rel_error(0.045, 0.03);
        let mid = cursor.claim().map(|c| c.len()).unwrap();
        assert!((1..32).contains(&mid), "mid-range chunk {mid}");
        // At (or past) the target: single points.
        cursor.note_rel_error(0.03, 0.03);
        assert_eq!(cursor.claim().map(|c| c.len()), Some(1));
        // Degenerate inputs leave the size untouched.
        cursor.note_rel_error(f64::NAN, 0.03);
        cursor.note_rel_error(0.5, 0.0);
        assert_eq!(cursor.claim().map(|c| c.len()), Some(1));
    }

    #[test]
    fn stride_queue_matches_static_assignment() {
        let mut q = WorkQueue::stride(1, 3, 10);
        let mut tl = WorkerTimeline::disabled();
        let mut seen = Vec::new();
        while let Some(c) = q.next_chunk(&mut tl) {
            assert_eq!(c.len(), 1);
            seen.push(c.start);
        }
        assert_eq!(seen, vec![1, 4, 7]);
    }

    #[test]
    fn chunk_log_replays_in_index_order() {
        let mut a = ChunkLog::new();
        a.begin(8, 4);
        a.push(80);
        a.push(81);
        let mut b = ChunkLog::new();
        b.begin(0, 4);
        b.push(0);
        b.push(1);
        b.begin(12, 4);
        b.push(120);
        let ordered: Vec<i32> = ChunkLog::into_ordered(vec![a, b]).collect();
        assert_eq!(ordered, vec![0, 1, 80, 81, 120]);
    }
}
