//! Error type for live-point creation, encoding, and simulation.

use spectral_cache::CacheError;
use spectral_codec::CodecError;
use std::error::Error;
use std::fmt;
use std::io;

/// Errors from the live-point framework.
#[derive(Debug)]
pub enum CoreError {
    /// A wire-format (DER/LZSS/container) fault.
    Codec(CodecError),
    /// A cache-geometry fault (reconstruction target not covered, etc.).
    Cache(CacheError),
    /// File I/O while saving or loading a library.
    Io(io::Error),
    /// The requested branch-predictor configuration has no stored
    /// snapshot in the live-point.
    BpredNotStored,
    /// The live-point belongs to a different benchmark than the program
    /// supplied for simulation.
    BenchmarkMismatch {
        /// Benchmark recorded in the live-point.
        expected: String,
        /// Benchmark of the supplied program.
        found: String,
    },
    /// The benchmark is too short for the requested sample design.
    BenchmarkTooShort,
    /// A live-point record index was out of range.
    IndexOutOfRange {
        /// The requested index.
        index: usize,
        /// The library's record count.
        len: usize,
    },
    /// The library holds no live-points.
    EmptyLibrary,
    /// A run checkpoint could not be read, failed verification, or
    /// does not match the run being resumed. The display is always a
    /// single line naming the file and the fault — a corrupt
    /// checkpoint diagnoses, it never panics or silently restarts the
    /// run from zero.
    Checkpoint {
        /// The checkpoint sidecar file.
        path: std::path::PathBuf,
        /// One-line description of the fault.
        reason: String,
    },
    /// The run was deliberately interrupted by a recovery drill
    /// ([`Recovery::abort_after`](crate::Recovery::abort_after)) after
    /// flushing its checkpoint.
    Interrupted {
        /// Freshly simulated points recorded before the interruption.
        processed: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Codec(e) => write!(f, "codec fault: {e}"),
            CoreError::Cache(e) => write!(f, "cache geometry fault: {e}"),
            CoreError::Io(e) => write!(f, "i/o fault: {e}"),
            CoreError::BpredNotStored => {
                write!(f, "no stored snapshot for the requested branch-predictor configuration")
            }
            CoreError::BenchmarkMismatch { expected, found } => {
                write!(f, "live-point is for benchmark '{expected}', got program '{found}'")
            }
            CoreError::BenchmarkTooShort => {
                write!(f, "benchmark too short for the requested sample design")
            }
            CoreError::IndexOutOfRange { index, len } => {
                write!(f, "live-point index {index} out of range (library holds {len})")
            }
            CoreError::EmptyLibrary => write!(f, "live-point library is empty"),
            CoreError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {}: {reason}", path.display())
            }
            CoreError::Interrupted { processed } => {
                write!(f, "run interrupted after {processed} points (checkpoint flushed)")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Codec(e) => Some(e),
            CoreError::Cache(e) => Some(e),
            CoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CodecError> for CoreError {
    fn from(e: CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<CacheError> for CoreError {
    fn from(e: CacheError) -> Self {
        CoreError::Cache(e)
    }
}

impl From<io::Error> for CoreError {
    fn from(e: io::Error) -> Self {
        CoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let e = CoreError::from(CodecError::Truncated);
        assert!(e.to_string().contains("codec"));
        assert!(e.source().is_some());
        assert!(CoreError::BpredNotStored.source().is_none());
        assert!(!CoreError::EmptyLibrary.to_string().is_empty());
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CoreError>();
    }
}
