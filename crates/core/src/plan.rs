//! Library planning: the paper's experiment procedure step 1
//! ("measure the target metric variance for the baseline configuration
//! to determine an appropriate live-point library size", §6.3 / Fig 6).

use spectral_isa::Program;
use spectral_stats::{required_sample_size, Confidence, SampleDesign, SystematicDesign};
use spectral_uarch::MachineConfig;
use spectral_warming::smarts_run;

use crate::error::CoreError;

/// The outcome of a pilot variance measurement: how large a live-point
/// library should be for a given precision target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LibraryPlan {
    /// Pilot-measured mean CPI.
    pub pilot_cpi: f64,
    /// Pilot-measured coefficient of variation of per-window CPI.
    pub cv: f64,
    /// Pilot windows measured.
    pub pilot_windows: u64,
    /// Live-points required for the requested precision.
    pub required_points: u64,
    /// Maximum windows the benchmark can host under this design
    /// (`required_points` above this means the precision target is not
    /// reachable at this benchmark length).
    pub max_points: u64,
}

impl LibraryPlan {
    /// Whether the benchmark can host the required sample.
    pub fn feasible(&self) -> bool {
        self.required_points <= self.max_points
    }

    /// The sample size to actually create: the requirement, clamped to
    /// what the benchmark can host.
    pub fn recommended_points(&self) -> u64 {
        self.required_points.min(self.max_points)
    }
}

/// Run a pilot full-warming measurement of `pilot_windows` windows and
/// size a library for `rel_err` at `confidence`.
///
/// The paper performs this step with "prior simulation sampling
/// approaches" — i.e., one SMARTS-style run — which is what this does.
/// The pilot costs one functional-warming pass over the benchmark.
///
/// # Errors
///
/// Returns [`CoreError::BenchmarkTooShort`] when the benchmark cannot
/// host a pilot of at least 30 windows.
pub fn plan_library(
    program: &Program,
    machine: &MachineConfig,
    pilot_windows: u64,
    rel_err: f64,
    confidence: Confidence,
    seed: u64,
) -> Result<LibraryPlan, CoreError> {
    let design = SystematicDesign::new(1000, machine.detailed_warming);
    let n = crate::creation::benchmark_length(program);
    let windows = design.windows(n, pilot_windows, seed);
    if (windows.len() as u64) < 30 {
        return Err(CoreError::BenchmarkTooShort);
    }
    let pilot = smarts_run(machine, program, &windows);
    let cv = pilot.estimator.coefficient_of_variation();
    let required = required_sample_size(cv, rel_err, confidence);
    let max_points = n / (1000 + machine.detailed_warming);
    Ok(LibraryPlan {
        pilot_cpi: pilot.estimator.mean(),
        cv,
        pilot_windows: pilot.estimator.count(),
        required_points: required,
        max_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_workloads::tiny;

    #[test]
    fn plan_for_tiny_benchmark() {
        let p = tiny().build();
        let machine = MachineConfig::eight_way();
        let plan = plan_library(&p, &machine, 40, 0.03, Confidence::C99_7, 7).expect("plan");
        assert!(plan.pilot_cpi > 0.1);
        assert!(plan.cv >= 0.0);
        assert!(plan.required_points >= 30);
        assert!(plan.max_points > 0);
        assert!(plan.recommended_points() <= plan.max_points);
    }

    #[test]
    fn looser_target_needs_fewer_points() {
        let p = tiny().build();
        let machine = MachineConfig::eight_way();
        let tight = plan_library(&p, &machine, 40, 0.01, Confidence::C99_7, 7).unwrap();
        let loose = plan_library(&p, &machine, 40, 0.10, Confidence::C99_7, 7).unwrap();
        assert!(loose.required_points <= tight.required_points);
    }

    #[test]
    fn too_short_benchmark_rejected() {
        use spectral_isa::{ProgramBuilder, Reg};
        let mut b = ProgramBuilder::new("shorty");
        b.li(Reg::R1, 1);
        b.halt();
        let p = b.build();
        assert!(matches!(
            plan_library(&p, &MachineConfig::eight_way(), 40, 0.03, Confidence::C99_7, 1),
            Err(CoreError::BenchmarkTooShort)
        ));
    }
}
