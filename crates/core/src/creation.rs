//! Live-point creation: one functional-warming pass per benchmark.

use std::collections::HashSet;

use spectral_cache::{Cache, CacheConfig, Csr, HierarchyConfig};
use spectral_isa::{DynInst, Emulator, MemOp, OpClass, Program, INST_BYTES};
use spectral_uarch::{BpredConfig, BranchPredictor, MachineConfig};

use crate::livepoint::{tlb_as_cache, WarmPayload};
use crate::livestate::StateScope;

/// How the unified-L2 Cache Set Record is fed during creation.
///
/// Functional warming feeds an L2 with the *misses* of the configured
/// L1s; a reusable record must pick one stream:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum L2StreamPolicy {
    /// Feed the L2 record with references that miss the **maximum** L1
    /// geometries. Exact for experiments whose L1s equal the maximums
    /// (the common case: sweep L2 sizes at fixed L1), slightly stale for
    /// smaller L1s. The default.
    #[default]
    FilteredByMaxL1,
    /// Feed the L2 record with the full combined reference stream
    /// (Barr-style MTR/CSR recording). Uniformly approximate for every
    /// covered configuration; useful when experiments vary L1 geometry.
    Unfiltered,
}

/// Parameters of a live-point creation pass.
///
/// The maximum hierarchy and the predictor list are the *only*
/// microarchitectural parameters a live-point library fixes (Table 3's
/// "fixed microarchitecture parameters" row); everything else —
/// pipeline widths, queue sizes, latencies, FU mixes — remains free at
/// simulation time.
#[derive(Debug, Clone)]
pub struct CreationConfig {
    /// Upper bounds on cache/TLB geometry (every simulated hierarchy
    /// must be covered by these).
    pub max_hierarchy: HierarchyConfig,
    /// Branch-predictor configurations to snapshot (one copy each).
    pub bpred_configs: Vec<BpredConfig>,
    /// Measurement-unit length in instructions (paper: 1000).
    pub unit_len: u64,
    /// Detailed-warming length in instructions (must cover the largest
    /// machine the library will serve; paper: 2000/4000).
    pub warm_len: u64,
    /// Number of live-points to create (the library's sample-size upper
    /// bound, §6.2).
    pub sample_size: u64,
    /// Seed for the sample design's random phase and the shuffle.
    pub seed: u64,
    /// Warm-state scope (Figure 5 ablation).
    pub scope: StateScope,
    /// Extra instructions past the window end whose reads are captured,
    /// covering the timing model's oracle lookahead.
    pub read_slack: u64,
    /// L2 record feeding policy.
    pub l2_policy: L2StreamPolicy,
}

impl Default for CreationConfig {
    /// A library serving both Table 1 machines: maximum geometry from
    /// the 16-way column, predictor snapshots for both, detailed
    /// warming sized for the 16-way (4000).
    fn default() -> Self {
        CreationConfig {
            max_hierarchy: HierarchyConfig::aggressive_16way(),
            bpred_configs: vec![BpredConfig::paper_2k(), BpredConfig::paper_8k()],
            unit_len: 1000,
            warm_len: 4000,
            sample_size: 400,
            seed: 0x5EC7,
            scope: StateScope::Full,
            read_slack: 1536,
            l2_policy: L2StreamPolicy::default(),
        }
    }
}

impl CreationConfig {
    /// A library dedicated to one machine: maximum geometry equal to the
    /// machine's own (smallest, fastest library; zero reconstruction
    /// slack), one predictor snapshot.
    pub fn for_machine(machine: &MachineConfig) -> Self {
        CreationConfig {
            max_hierarchy: machine.hierarchy,
            bpred_configs: vec![machine.bpred],
            unit_len: 1000,
            warm_len: machine.detailed_warming,
            ..Self::default()
        }
    }

    /// Builder-style sample-size override.
    pub fn with_sample_size(mut self, n: u64) -> Self {
        self.sample_size = n;
        self
    }

    /// Builder-style scope override (Figure 5 ablation).
    pub fn with_scope(mut self, scope: StateScope) -> Self {
        self.scope = scope;
        self
    }

    /// Builder-style seed override.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Measure a benchmark's committed-instruction count with a plain
/// functional pass (needed to place sample windows).
pub fn benchmark_length(program: &Program) -> u64 {
    let mut emu = Emulator::new(program);
    while emu.step().is_some() {}
    emu.seq()
}

/// The warm-state recorders driven by the creation pass.
#[derive(Debug, Clone)]
pub(crate) struct CreationWarmers {
    csr_l1i: Csr,
    csr_l1d: Csr,
    csr_l2: Csr,
    csr_itlb: Csr,
    csr_dtlb: Csr,
    bpreds: Vec<BranchPredictor>,
    /// Max-geometry L1 filters for the L2 stream policy.
    filter_l1i: Cache,
    filter_l1d: Cache,
    policy: L2StreamPolicy,
    last_fetch_line: u64,
    l1i_line: u64,
}

impl CreationWarmers {
    pub fn new(cfg: &CreationConfig) -> Self {
        let h = &cfg.max_hierarchy;
        CreationWarmers {
            csr_l1i: Csr::new(h.l1i),
            csr_l1d: Csr::new(h.l1d),
            csr_l2: Csr::new(h.l2),
            csr_itlb: Csr::new(tlb_as_cache(&h.itlb)),
            csr_dtlb: Csr::new(tlb_as_cache(&h.dtlb)),
            bpreds: cfg.bpred_configs.iter().map(|c| BranchPredictor::new(*c)).collect(),
            filter_l1i: Cache::new(h.l1i),
            filter_l1d: Cache::new(h.l1d),
            policy: cfg.l2_policy,
            last_fetch_line: u64::MAX,
            l1i_line: h.l1i.line_bytes(),
        }
    }

    /// Observe one committed instruction.
    pub fn observe(&mut self, di: &DynInst) {
        let line = di.pc / self.l1i_line;
        if line != self.last_fetch_line {
            self.last_fetch_line = line;
            self.csr_l1i.record(di.pc, false);
            self.csr_itlb.record(di.pc, false);
            match self.policy {
                L2StreamPolicy::Unfiltered => self.csr_l2.record(di.pc, false),
                L2StreamPolicy::FilteredByMaxL1 => {
                    if !self.filter_l1i.access(di.pc, false) {
                        self.csr_l2.record(di.pc, false);
                    }
                }
            }
        }
        if let Some((op, addr)) = di.mem {
            let write = op == MemOp::Write;
            self.csr_l1d.record(addr, write);
            self.csr_dtlb.record(addr, false);
            match self.policy {
                L2StreamPolicy::Unfiltered => self.csr_l2.record(addr, write),
                L2StreamPolicy::FilteredByMaxL1 => {
                    if !self.filter_l1d.access(addr, write) {
                        self.csr_l2.record(addr, write);
                    }
                }
            }
        }
        if di.op == OpClass::Branch || di.op == OpClass::Jump {
            if let Some(info) = di.branch {
                for bp in &mut self.bpreds {
                    bp.update(di.pc, di.pc + INST_BYTES, &info);
                }
            }
        }
    }

    /// Clone the current warm state into a live-point payload.
    pub fn snapshot(&self) -> WarmPayload {
        WarmPayload {
            l1i: self.csr_l1i.clone(),
            l1d: self.csr_l1d.clone(),
            l2: self.csr_l2.clone(),
            itlb: self.csr_itlb.clone(),
            dtlb: self.csr_dtlb.clone(),
            bpreds: self.bpreds.iter().map(|b| b.snapshot()).collect(),
        }
    }
}

/// Block/page sets touched by the correct path inside one window, used
/// to filter restricted live-state payloads.
#[derive(Debug, Default)]
pub(crate) struct TouchedState {
    pub l1i: HashSet<u64>,
    pub l1d: HashSet<u64>,
    pub l2: HashSet<u64>,
    pub itlb: HashSet<u64>,
    pub dtlb: HashSet<u64>,
}

impl TouchedState {
    pub fn observe(&mut self, di: &DynInst, h: &HierarchyConfig) {
        self.l1i.insert(h.l1i.block_of(di.pc));
        self.l2.insert(h.l2.block_of(di.pc));
        self.itlb.insert(di.pc / tlb_as_cache(&h.itlb).line_bytes());
        if let Some((_, addr)) = di.mem {
            self.l1d.insert(h.l1d.block_of(addr));
            self.l2.insert(h.l2.block_of(addr));
            self.dtlb.insert(addr / tlb_as_cache(&h.dtlb).line_bytes());
        }
    }
}

/// Filter a CSR down to the blocks in `touched` (restricted live-state:
/// untouched warm state is omitted and therefore cold at load time).
pub(crate) fn filter_csr(csr: &Csr, touched: &HashSet<u64>, granule: &CacheConfig) -> Csr {
    let entries = csr
        .to_entries()
        .into_iter()
        .map(|set| {
            set.into_iter()
                .filter(|e| {
                    // CSR blocks are at the record's own granularity.
                    let _ = granule;
                    touched.contains(&e.block)
                })
                .collect()
        })
        .collect();
    Csr::from_entries(*csr.max_config(), entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_workloads::tiny;

    #[test]
    fn benchmark_length_counts_commits() {
        let p = tiny().build();
        let n = benchmark_length(&p);
        assert!(n > 10_000);
    }

    #[test]
    fn default_config_covers_both_machines() {
        use spectral_cache::CacheHierarchy;
        let cfg = CreationConfig::default();
        let eight = MachineConfig::eight_way();
        let sixteen = MachineConfig::sixteen_way();
        assert!(CacheHierarchy::check_within(&eight.hierarchy, &cfg.max_hierarchy).is_ok());
        assert!(CacheHierarchy::check_within(&sixteen.hierarchy, &cfg.max_hierarchy).is_ok());
        assert!(cfg.bpred_configs.contains(&eight.bpred));
        assert!(cfg.bpred_configs.contains(&sixteen.bpred));
        assert!(cfg.warm_len >= eight.detailed_warming.max(sixteen.detailed_warming));
    }

    #[test]
    fn warmers_populate_all_records() {
        let p = tiny().build();
        let cfg = CreationConfig::for_machine(&MachineConfig::eight_way());
        let mut warmers = CreationWarmers::new(&cfg);
        let mut emu = Emulator::new(&p);
        for _ in 0..30_000 {
            match emu.step() {
                Some(di) => warmers.observe(&di),
                None => break,
            }
        }
        let snap = warmers.snapshot();
        assert!(snap.l1i.entry_count() > 0);
        assert!(snap.l1d.entry_count() > 0);
        assert!(snap.l2.entry_count() > 0, "filtered L2 stream still sees cold misses");
        assert!(snap.itlb.entry_count() > 0);
        assert!(snap.dtlb.entry_count() > 0);
        assert_eq!(snap.bpreds.len(), 1);
    }

    #[test]
    fn filtered_l2_sees_fewer_records_than_unfiltered() {
        let p = tiny().build();
        let mut filt_cfg = CreationConfig::for_machine(&MachineConfig::eight_way());
        filt_cfg.l2_policy = L2StreamPolicy::FilteredByMaxL1;
        let mut unf_cfg = filt_cfg.clone();
        unf_cfg.l2_policy = L2StreamPolicy::Unfiltered;
        let mut wf = CreationWarmers::new(&filt_cfg);
        let mut wu = CreationWarmers::new(&unf_cfg);
        let mut emu = Emulator::new(&p);
        for _ in 0..30_000 {
            match emu.step() {
                Some(di) => {
                    wf.observe(&di);
                    wu.observe(&di);
                }
                None => break,
            }
        }
        assert!(wf.snapshot().l2.clock() < wu.snapshot().l2.clock());
    }

    #[test]
    fn filter_csr_drops_untouched() {
        let cfg = CacheConfig::new(4096, 2, 32).unwrap();
        let mut csr = Csr::new(cfg);
        for i in 0..50u64 {
            csr.record(i * 32, false);
        }
        let touched: HashSet<u64> = (0..10u64).collect(); // blocks 0..10
        let filtered = filter_csr(&csr, &touched, &cfg);
        assert_eq!(filtered.entry_count(), 10);
        assert!(filtered.to_entries().iter().flatten().all(|e| touched.contains(&e.block)));
    }
}
