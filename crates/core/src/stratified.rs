//! Stratified live-point processing — the sampling optimization the
//! paper cites alongside matched pairs ("recently-proposed sampling
//! optimizations such as matched-pair comparison and stratified
//! sampling" lower sample sizes but leave SMARTS runtimes unchanged;
//! with live-points they translate directly into time savings).
//!
//! Strata are position bands of the benchmark: for phased programs,
//! position tracks phase, so within-stratum CPI variance is far below
//! population variance and the combined estimate converges with fewer
//! points.

use spectral_isa::Program;
use spectral_stats::{StratifiedEstimator, MIN_SAMPLE_SIZE};

use crate::creation::benchmark_length;
use crate::error::CoreError;
use crate::library::LivePointLibrary;
use crate::runner::{simulate_live_point, RunPolicy};
use spectral_uarch::MachineConfig;

/// Result of a stratified estimation run.
#[derive(Debug, Clone)]
pub struct StratifiedEstimate {
    estimator: StratifiedEstimator,
    confidence: spectral_stats::Confidence,
    processed: usize,
    reached_target: bool,
}

impl StratifiedEstimate {
    /// Combined (population-weighted) CPI estimate.
    pub fn mean(&self) -> f64 {
        self.estimator.mean()
    }

    /// Confidence-interval half-width on the combined mean.
    pub fn half_width(&self) -> f64 {
        self.estimator.half_width(self.confidence)
    }

    /// Relative half-width.
    pub fn relative_half_width(&self) -> f64 {
        self.estimator.relative_half_width(self.confidence)
    }

    /// Live-points processed.
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Whether the precision target was met before exhausting the
    /// library.
    pub fn reached_target(&self) -> bool {
        self.reached_target
    }

    /// The per-stratum estimators.
    pub fn estimator(&self) -> &StratifiedEstimator {
        &self.estimator
    }
}

/// Processes a library with position-band strata: a pilot round seeds
/// per-stratum variances, then points are consumed in shuffled order
/// while the *combined* confidence interval drives termination.
#[derive(Debug)]
pub struct StratifiedRunner<'l> {
    library: &'l LivePointLibrary,
    machine: MachineConfig,
    num_strata: usize,
}

impl<'l> StratifiedRunner<'l> {
    /// Create a runner with `num_strata` equal-width position bands.
    ///
    /// # Panics
    ///
    /// Panics if `num_strata` is zero.
    pub fn new(library: &'l LivePointLibrary, machine: MachineConfig, num_strata: usize) -> Self {
        assert!(num_strata > 0, "at least one stratum required");
        StratifiedRunner { library, machine, num_strata }
    }

    /// Run until the combined CI meets `policy.target_rel_err`, every
    /// stratum has at least `MIN_SAMPLE_SIZE / num_strata` points, or
    /// the library is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates decode/simulation faults; an empty library is
    /// [`CoreError::EmptyLibrary`].
    pub fn run(
        &self,
        program: &Program,
        policy: &RunPolicy,
    ) -> Result<StratifiedEstimate, CoreError> {
        if self.library.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let n = benchmark_length(program);
        let band = (n / self.num_strata as u64).max(1);
        let stratum_of = |measure_start: u64| -> usize {
            ((measure_start / band) as usize).min(self.num_strata - 1)
        };
        let mut est = StratifiedEstimator::uniform(self.num_strata);
        let per_stratum_floor = (MIN_SAMPLE_SIZE / self.num_strata as u64).max(2);
        let limit = policy.max_points.unwrap_or(usize::MAX).min(self.library.len());
        let mut processed = 0;
        let mut reached = false;
        for i in 0..limit {
            let lp = self.library.get(i)?;
            let stats = simulate_live_point(&lp, program, &self.machine)?;
            est.push(stratum_of(lp.window.measure_start), stats.cpi());
            processed += 1;
            if est.all_strata_have(per_stratum_floor)
                && est.count() >= MIN_SAMPLE_SIZE
                && est.relative_half_width(policy.confidence) <= policy.target_rel_err
            {
                reached = true;
                break;
            }
        }
        Ok(StratifiedEstimate {
            estimator: est,
            confidence: policy.confidence,
            processed,
            reached_target: reached,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::creation::CreationConfig;
    use crate::runner::OnlineRunner;
    use spectral_workloads::tiny;

    fn setup() -> (Program, LivePointLibrary) {
        let p = tiny().build();
        let mut cfg = CreationConfig::for_machine(&MachineConfig::eight_way()).with_sample_size(60);
        cfg.unit_len = 500;
        cfg.warm_len = 1000;
        let lib = LivePointLibrary::create(&p, &cfg).unwrap();
        (p, lib)
    }

    #[test]
    fn stratified_estimate_matches_uniform_mean() {
        let (p, lib) = setup();
        let policy =
            RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
        let uniform = OnlineRunner::new(&lib, MachineConfig::eight_way()).run(&p, &policy).unwrap();
        let strat =
            StratifiedRunner::new(&lib, MachineConfig::eight_way(), 4).run(&p, &policy).unwrap();
        // Equal-weight position strata with systematic sampling put
        // nearly equal counts in each band, so the means agree closely.
        let rel = (uniform.mean() - strat.mean()).abs() / uniform.mean();
        assert!(rel < 0.05, "uniform {} vs stratified {}", uniform.mean(), strat.mean());
        assert_eq!(strat.processed(), lib.len());
    }

    #[test]
    fn stratified_ci_no_worse_on_phased_benchmark() {
        // tiny() is phased: position strata should capture the phase
        // structure and tighten (or at least match) the interval.
        let (p, lib) = setup();
        let policy =
            RunPolicy { target_rel_err: 1e-12, trajectory_stride: 0, ..RunPolicy::default() };
        let uniform = OnlineRunner::new(&lib, MachineConfig::eight_way()).run(&p, &policy).unwrap();
        let strat =
            StratifiedRunner::new(&lib, MachineConfig::eight_way(), 4).run(&p, &policy).unwrap();
        assert!(
            strat.half_width() <= uniform.half_width() * 1.10,
            "stratified CI {} should not exceed uniform CI {} meaningfully",
            strat.half_width(),
            uniform.half_width()
        );
    }

    #[test]
    fn early_termination_with_loose_target() {
        let (p, lib) = setup();
        let strat = StratifiedRunner::new(&lib, MachineConfig::eight_way(), 2)
            .run(&p, &RunPolicy { target_rel_err: 0.9, ..RunPolicy::default() })
            .unwrap();
        assert!(strat.reached_target());
        assert!(strat.processed() < lib.len());
    }
}
