//! DER wire format for live-points.
//!
//! The paper encodes live-points in ASN.1 DER with gzip compression
//! (§3). This module defines the concrete schema over the
//! `spectral-codec` DER subset, with compression-friendly pre-coding:
//! tag arrays are stored as per-set varint-coded tags, timestamps as
//! recency deltas from the record clock, and live-state addresses as
//! sorted word deltas — all of which collapse well under LZSS.

use spectral_cache::{CacheConfig, Csr, CsrEntry, HierarchyConfig, TlbConfig};
use spectral_codec::{varint, CodecError, DerReader, DerWriter};
use spectral_isa::{ArchState, RegFile};
use spectral_stats::WindowSpec;
use spectral_uarch::{BpredConfig, BpredSnapshot};

use crate::error::CoreError;
use crate::livepoint::{LivePoint, SizeBreakdown, WarmPayload};
use crate::livestate::{LiveState, StateScope};

// --- helpers ------------------------------------------------------------

fn pack_2bit(counters: &[u8]) -> Vec<u8> {
    let mut out = vec![0u8; counters.len().div_ceil(4)];
    for (i, &c) in counters.iter().enumerate() {
        out[i / 4] |= (c & 3) << ((i % 4) * 2);
    }
    out
}

fn unpack_2bit(data: &[u8], count: usize) -> Result<Vec<u8>, CodecError> {
    if data.len() != count.div_ceil(4) {
        return Err(CodecError::BadLength);
    }
    Ok((0..count).map(|i| (data[i / 4] >> ((i % 4) * 2)) & 3).collect())
}

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bits(data: &[u8], count: usize) -> Result<Vec<bool>, CodecError> {
    if data.len() != count.div_ceil(8) {
        return Err(CodecError::BadLength);
    }
    Ok((0..count).map(|i| data[i / 8] & (1 << (i % 8)) != 0).collect())
}

fn u64s_to_bytes(words: impl Iterator<Item = u64>) -> Vec<u8> {
    let mut out = Vec::new();
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn u32s_to_bytes(words: impl Iterator<Item = u32>) -> Vec<u8> {
    let mut out = Vec::new();
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out
}

fn bytes_to_u32s(data: &[u8]) -> Result<Vec<u32>, CodecError> {
    if !data.len().is_multiple_of(4) {
        return Err(CodecError::BadLength);
    }
    Ok(data
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
        .collect())
}

fn bytes_to_u64s(data: &[u8]) -> Result<Vec<u64>, CodecError> {
    if !data.len().is_multiple_of(8) {
        return Err(CodecError::BadLength);
    }
    Ok(data
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect())
}

// --- cache/TLB geometry ---------------------------------------------------

fn enc_cache_config(w: &mut DerWriter, c: &CacheConfig) {
    w.seq(|w| {
        w.u64(c.size_bytes());
        w.u64(c.assoc() as u64);
        w.u64(c.line_bytes());
    });
}

fn dec_cache_config(r: &mut DerReader<'_>) -> Result<CacheConfig, CoreError> {
    let mut s = r.seq()?;
    let size = s.u64()?;
    let assoc = s.u64()? as u32;
    let line = s.u64()?;
    Ok(CacheConfig::new(size, assoc, line)?)
}

fn enc_tlb_config(w: &mut DerWriter, t: &TlbConfig) {
    w.seq(|w| {
        w.u64(t.entries() as u64);
        w.u64(t.assoc() as u64);
        w.u64(t.page_bytes());
    });
}

fn dec_tlb_config(r: &mut DerReader<'_>) -> Result<TlbConfig, CoreError> {
    let mut s = r.seq()?;
    let entries = s.u64()? as u32;
    let assoc = s.u64()? as u32;
    let page = s.u64()?;
    Ok(TlbConfig::new(entries, assoc, page)?)
}

// --- CSR ------------------------------------------------------------------

fn enc_csr(w: &mut DerWriter, csr: &Csr) {
    let cfg = *csr.max_config();
    let clock = csr.clock();
    let sets = csr.to_entries();
    let num_sets = cfg.num_sets();
    let mut set_lens = Vec::with_capacity(sets.len());
    let mut tags = Vec::new();
    let mut ages = Vec::new();
    let mut dirty = Vec::new();
    for set in &sets {
        set_lens.push(set.len() as u8);
        for e in set {
            varint::write_uvarint(&mut tags, e.block / num_sets);
            varint::write_uvarint(&mut ages, clock - e.last_access);
            dirty.push(e.dirty);
        }
    }
    w.seq(|w| {
        enc_cache_config(w, &cfg);
        w.u64(clock);
        w.bytes(&set_lens);
        w.bytes(&tags);
        w.bytes(&ages);
        w.bytes(&pack_bits(&dirty));
    });
}

fn dec_csr(r: &mut DerReader<'_>) -> Result<Csr, CoreError> {
    let mut s = r.seq()?;
    let cfg = dec_cache_config(&mut s)?;
    let clock = s.u64()?;
    let set_lens = s.bytes()?.to_vec();
    if set_lens.len() != cfg.num_sets() as usize {
        return Err(CodecError::BadLength.into());
    }
    let total: usize = set_lens.iter().map(|&l| l as usize).sum();
    let tag_bytes = s.bytes()?;
    let age_bytes = s.bytes()?;
    let dirty = unpack_bits(s.bytes()?, total)?;
    let tags = varint::decode_exact(tag_bytes, total)?;
    let ages = varint::decode_exact(age_bytes, total)?;
    let num_sets = cfg.num_sets();
    let mut entries = Vec::with_capacity(set_lens.len());
    let mut k = 0usize;
    for (set_idx, &len) in set_lens.iter().enumerate() {
        let mut set = Vec::with_capacity(len as usize);
        for _ in 0..len {
            let block = tags[k] * num_sets + set_idx as u64;
            let last_access = clock.checked_sub(ages[k]).ok_or(CodecError::BadLength)?;
            set.push(CsrEntry { block, last_access, dirty: dirty[k] });
            k += 1;
        }
        entries.push(set);
    }
    Ok(Csr::from_entries(cfg, entries))
}

// --- branch predictor -------------------------------------------------------

fn enc_bpred(w: &mut DerWriter, s: &BpredSnapshot) {
    w.seq(|w| {
        w.u64(s.config.table_entries as u64);
        w.u64(s.config.history_bits as u64);
        w.u64(s.config.btb_entries as u64);
        w.u64(s.config.ras_entries as u64);
        w.u64(s.config.mispredict_penalty);
        w.u64(s.config.predictions_per_cycle as u64);
        w.bytes(&pack_2bit(&s.bimodal));
        w.bytes(&pack_2bit(&s.gshare));
        w.bytes(&pack_2bit(&s.meta));
        w.u64(s.history);
        // Code addresses fit in 32 bits on SRISC; pack the BTB and RAS
        // tightly (real BTBs store partial tags for the same reason).
        w.bytes(&u32s_to_bytes(s.btb.iter().map(|&(pc, _)| pc as u32)));
        w.bytes(&u32s_to_bytes(s.btb.iter().map(|&(_, t)| t as u32)));
        w.bytes(&u32s_to_bytes(s.ras.iter().map(|&a| a as u32)));
        w.u64(s.ras_top as u64);
    });
}

fn dec_bpred(r: &mut DerReader<'_>) -> Result<BpredSnapshot, CoreError> {
    let mut s = r.seq()?;
    let table_entries = s.u64()? as u32;
    let history_bits = s.u64()? as u32;
    let btb_entries = s.u64()? as u32;
    let ras_entries = s.u64()? as u32;
    let mispredict_penalty = s.u64()?;
    let predictions_per_cycle = s.u64()? as u32;
    let config = BpredConfig {
        table_entries,
        history_bits,
        btb_entries,
        ras_entries,
        mispredict_penalty,
        predictions_per_cycle,
    };
    let n = table_entries as usize;
    let bimodal = unpack_2bit(s.bytes()?, n)?;
    let gshare = unpack_2bit(s.bytes()?, n)?;
    let meta = unpack_2bit(s.bytes()?, n)?;
    let history = s.u64()?;
    let pcs = bytes_to_u32s(s.bytes()?)?;
    let targets = bytes_to_u32s(s.bytes()?)?;
    if pcs.len() != btb_entries as usize || targets.len() != pcs.len() {
        return Err(CodecError::BadLength.into());
    }
    let ras = bytes_to_u32s(s.bytes()?)?;
    if ras.len() != ras_entries as usize {
        return Err(CodecError::BadLength.into());
    }
    let ras_top = s.u64()? as u32;
    Ok(BpredSnapshot {
        config,
        bimodal,
        gshare,
        meta,
        history,
        btb: pcs.into_iter().map(u64::from).zip(targets.into_iter().map(u64::from)).collect(),
        ras: ras.into_iter().map(u64::from).collect(),
        ras_top,
    })
}

// --- live-state ---------------------------------------------------------------

fn enc_live_state(w: &mut DerWriter, ls: &LiveState, window: &WindowSpec) {
    let mut addr_deltas = Vec::new();
    let mut prev = 0u64;
    for &(addr, _) in &ls.memory {
        let word = addr >> 3;
        varint::write_uvarint(&mut addr_deltas, word - prev);
        prev = word;
    }
    w.seq(|w| {
        w.u64(window.detail_start);
        w.u64(window.measure_start);
        w.u64(window.measure_len);
        w.u64_array(ls.arch.regs.int_regs());
        w.u64_array(&ls.arch.regs.fp_regs().map(f64::to_bits));
        w.u64(ls.arch.pc);
        w.u64(ls.arch.seq);
        w.u64(ls.conventional_bytes);
        w.u64(ls.memory.len() as u64);
        w.bytes(&addr_deltas);
        w.bytes(&u64s_to_bytes(ls.memory.iter().map(|&(_, v)| v)));
    });
}

fn dec_live_state(r: &mut DerReader<'_>) -> Result<(LiveState, WindowSpec), CoreError> {
    let mut s = r.seq()?;
    let window =
        WindowSpec { detail_start: s.u64()?, measure_start: s.u64()?, measure_len: s.u64()? };
    let int_words = s.u64_array()?;
    let fp_words = s.u64_array()?;
    if int_words.len() != 32 || fp_words.len() != 32 {
        return Err(CodecError::BadLength.into());
    }
    let mut regs = RegFile::new();
    regs.set_int_regs(int_words.try_into().expect("checked 32"));
    let fp: Vec<f64> = fp_words.into_iter().map(f64::from_bits).collect();
    regs.set_fp_regs(fp.try_into().expect("checked 32"));
    let pc = s.u64()?;
    let seq = s.u64()?;
    let conventional_bytes = s.u64()?;
    let count = s.u64()? as usize;
    let deltas = varint::decode_exact(s.bytes()?, count)?;
    let values = bytes_to_u64s(s.bytes()?)?;
    if values.len() != count {
        return Err(CodecError::BadLength.into());
    }
    let mut memory = Vec::with_capacity(count);
    let mut word = 0u64;
    for (d, v) in deltas.into_iter().zip(values) {
        word += d;
        memory.push((word << 3, v));
    }
    Ok((LiveState { arch: ArchState { regs, pc, seq }, memory, conventional_bytes }, window))
}

// --- top level ------------------------------------------------------------------

/// Encode a live-point to its DER representation (uncompressed).
pub fn encode_livepoint(lp: &LivePoint) -> Vec<u8> {
    let mut w = DerWriter::new();
    w.seq(|w| {
        w.utf8(&lp.benchmark);
        w.u64(match lp.scope {
            StateScope::Full => 0,
            StateScope::Restricted => 1,
        });
        w.seq(|w| {
            enc_cache_config(w, &lp.max_hierarchy.l1i);
            enc_cache_config(w, &lp.max_hierarchy.l1d);
            enc_cache_config(w, &lp.max_hierarchy.l2);
            enc_tlb_config(w, &lp.max_hierarchy.itlb);
            enc_tlb_config(w, &lp.max_hierarchy.dtlb);
        });
        enc_live_state(w, &lp.live_state, &lp.window);
        enc_csr(w, &lp.warm.l1i);
        enc_csr(w, &lp.warm.l1d);
        enc_csr(w, &lp.warm.l2);
        enc_csr(w, &lp.warm.itlb);
        enc_csr(w, &lp.warm.dtlb);
        w.seq(|w| {
            for snap in &lp.warm.bpreds {
                enc_bpred(w, snap);
            }
        });
    });
    w.finish()
}

/// Decode a live-point from its DER representation.
///
/// # Errors
///
/// Any structural fault surfaces as [`CoreError::Codec`] or
/// [`CoreError::Cache`] (invalid recorded geometry).
pub fn decode_livepoint(data: &[u8]) -> Result<LivePoint, CoreError> {
    let mut r = DerReader::new(data);
    let mut s = r.seq()?;
    let benchmark = s.utf8()?.to_owned();
    let scope = match s.u64()? {
        0 => StateScope::Full,
        _ => StateScope::Restricted,
    };
    let mut h = s.seq()?;
    let l1i_cfg = dec_cache_config(&mut h)?;
    let l1d_cfg = dec_cache_config(&mut h)?;
    let l2_cfg = dec_cache_config(&mut h)?;
    let itlb_cfg = dec_tlb_config(&mut h)?;
    let dtlb_cfg = dec_tlb_config(&mut h)?;
    let max_hierarchy =
        HierarchyConfig { l1i: l1i_cfg, l1d: l1d_cfg, l2: l2_cfg, itlb: itlb_cfg, dtlb: dtlb_cfg };
    let (live_state, window) = dec_live_state(&mut s)?;
    let l1i = dec_csr(&mut s)?;
    let l1d = dec_csr(&mut s)?;
    let l2 = dec_csr(&mut s)?;
    let itlb = dec_csr(&mut s)?;
    let dtlb = dec_csr(&mut s)?;
    let mut bpreds = Vec::new();
    let mut bp = s.seq()?;
    while !bp.is_empty() {
        bpreds.push(dec_bpred(&mut bp)?);
    }
    Ok(LivePoint {
        benchmark,
        window,
        scope,
        live_state,
        warm: WarmPayload { l1i, l1d, l2, itlb, dtlb, bpreds },
        max_hierarchy,
    })
}

/// Per-component encoded sizes (the Figure 7 breakdown).
pub fn breakdown(lp: &LivePoint) -> SizeBreakdown {
    let comp = |f: &dyn Fn(&mut DerWriter)| -> u64 {
        let mut w = DerWriter::new();
        f(&mut w);
        w.len() as u64
    };
    let arch_and_header = comp(&|w| {
        w.utf8(&lp.benchmark);
        w.u64(0);
        w.seq(|w| {
            enc_cache_config(w, &lp.max_hierarchy.l1i);
            enc_cache_config(w, &lp.max_hierarchy.l1d);
            enc_cache_config(w, &lp.max_hierarchy.l2);
            enc_tlb_config(w, &lp.max_hierarchy.itlb);
            enc_tlb_config(w, &lp.max_hierarchy.dtlb);
        });
        w.u64_array(lp.live_state.arch.regs.int_regs());
        w.u64_array(&lp.live_state.arch.regs.fp_regs().map(f64::to_bits));
    });
    let memory_data = comp(&|w| {
        let mut addr_deltas = Vec::new();
        let mut prev = 0u64;
        for &(addr, _) in &lp.live_state.memory {
            let word = addr >> 3;
            spectral_codec::varint::write_uvarint(&mut addr_deltas, word - prev);
            prev = word;
        }
        w.bytes(&addr_deltas);
        w.bytes(&u64s_to_bytes(lp.live_state.memory.iter().map(|&(_, v)| v)));
    });
    let csr_size = |c: &Csr| -> u64 {
        let mut w = DerWriter::new();
        enc_csr(&mut w, c);
        w.len() as u64
    };
    let bpred = comp(&|w| {
        w.seq(|w| {
            for snap in &lp.warm.bpreds {
                enc_bpred(w, snap);
            }
        });
    });
    SizeBreakdown {
        regs_tlb: arch_and_header + csr_size(&lp.warm.itlb) + csr_size(&lp.warm.dtlb),
        bpred,
        l1i_tags: csr_size(&lp.warm.l1i),
        l1d_tags: csr_size(&lp.warm.l1d),
        l2_tags: csr_size(&lp.warm.l2),
        memory_data,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::livepoint::tlb_as_cache;
    use spectral_uarch::BranchPredictor;

    fn sample_csr(cfg: CacheConfig, n: u64, seed: u64) -> Csr {
        let mut csr = Csr::new(cfg);
        let mut x = seed | 1;
        for _ in 0..n {
            x = x.wrapping_mul(0x5851_F42D_4C95_7F2D).wrapping_add(12345);
            csr.record(x % (1 << 24), x & 4 == 0);
        }
        csr
    }

    fn sample_livepoint() -> LivePoint {
        let h = HierarchyConfig::baseline_8way();
        let mut bp = BranchPredictor::new(BpredConfig::paper_2k());
        for i in 0..200u64 {
            let pc = 0x40_0000 + (i % 23) * 4;
            bp.update(
                pc,
                pc + 4,
                &spectral_isa::BranchInfo {
                    taken: i % 3 == 0,
                    target: pc + 100,
                    conditional: true,
                    indirect: false,
                    is_call: false,
                    is_return: false,
                },
            );
        }
        let mut regs = RegFile::new();
        regs.write(spectral_isa::Reg::R7, 0xDEAD);
        regs.write_fp(3, 2.5);
        LivePoint {
            benchmark: "test-bench".into(),
            window: WindowSpec { detail_start: 1000, measure_start: 3000, measure_len: 1000 },
            scope: StateScope::Full,
            live_state: LiveState {
                arch: ArchState { regs, pc: 0x40_0040, seq: 1000 },
                memory: vec![(0x1000_0000, 5), (0x1000_0040, 77), (0x2000_0000, 9)],
                conventional_bytes: 1 << 20,
            },
            warm: WarmPayload {
                l1i: sample_csr(h.l1i, 500, 1),
                l1d: sample_csr(h.l1d, 800, 2),
                l2: sample_csr(h.l2, 1200, 3),
                itlb: sample_csr(tlb_as_cache(&h.itlb), 100, 4),
                dtlb: sample_csr(tlb_as_cache(&h.dtlb), 150, 5),
                bpreds: vec![bp.snapshot()],
            },
            max_hierarchy: h,
        }
    }

    #[test]
    fn full_roundtrip() {
        let lp = sample_livepoint();
        let bytes = encode_livepoint(&lp);
        let back = decode_livepoint(&bytes).unwrap();
        assert_eq!(back.benchmark, lp.benchmark);
        assert_eq!(back.window, lp.window);
        assert_eq!(back.scope, lp.scope);
        assert_eq!(back.live_state, lp.live_state);
        assert_eq!(back.max_hierarchy, lp.max_hierarchy);
        assert_eq!(back.warm.l1d.to_entries(), lp.warm.l1d.to_entries());
        assert_eq!(back.warm.l2.to_entries(), lp.warm.l2.to_entries());
        assert_eq!(back.warm.itlb.to_entries(), lp.warm.itlb.to_entries());
        assert_eq!(back.warm.bpreds, lp.warm.bpreds);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(decode_livepoint(&[0x30, 0x02, 0x01, 0x01]).is_err());
        assert!(decode_livepoint(&[]).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_livepoint(&sample_livepoint());
        assert!(decode_livepoint(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn breakdown_close_to_encoded_total() {
        let lp = sample_livepoint();
        let bytes = encode_livepoint(&lp);
        let b = lp.size_breakdown();
        let total = b.total();
        // The breakdown re-encodes components; allow small framing
        // differences.
        assert!(
            (total as i64 - bytes.len() as i64).unsigned_abs() < 200,
            "breakdown {total} vs encoded {}",
            bytes.len()
        );
        assert!(b.l2_tags > b.l1d_tags, "L2 record must dominate L1 (Fig 7 shape)");
    }

    #[test]
    fn pack_unpack_2bit() {
        let counters: Vec<u8> = (0..37).map(|i| (i % 4) as u8).collect();
        let packed = pack_2bit(&counters);
        assert_eq!(unpack_2bit(&packed, counters.len()).unwrap(), counters);
    }

    #[test]
    fn pack_unpack_bits() {
        let bits: Vec<bool> = (0..21).map(|i| i % 3 == 0).collect();
        let packed = pack_bits(&bits);
        assert_eq!(unpack_bits(&packed, bits.len()).unwrap(), bits);
    }

    #[test]
    fn synthetic_point_still_compresses() {
        // This fixture fills the CSRs with LCG-random tags — close to
        // the worst case. Real live-points (structured tag locality)
        // land in the paper's gzip band; that is asserted at library
        // level in `library.rs` tests and measured in the Fig 7/8
        // experiments. Here we only require *some* compression.
        let lp = sample_livepoint();
        let bytes = encode_livepoint(&lp);
        let packed = spectral_codec::lzss::compress(&bytes);
        assert!(
            packed.len() < bytes.len(),
            "expected compression, got {}:{}",
            bytes.len(),
            packed.len()
        );
    }
}
