//! Live-state: the minimal architectural-state subset for one window.

use std::collections::HashSet;

use spectral_isa::{ArchState, Emulator, MemOp, Program, SparseMemory};

/// How much warm microarchitectural state a live-point retains
/// (the paper's §5 ablation, Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateScope {
    /// Store complete warm cache-tag/TLB state under the maximum
    /// geometry (plus predictor snapshots): wrong-path instructions are
    /// scheduled accurately. The paper's chosen design (<0.1% added
    /// bias).
    Full,
    /// Store only the warm state for blocks the *correct path* touches
    /// inside the window. Smallest possible live-point that still
    /// executes the correct path exactly, but wrong-path accesses hit
    /// effectively-uninitialized state (the paper measures 0.1% average
    /// and 3.3% worst-case added bias).
    Restricted,
}

/// The live-state payload: architectural registers plus exactly the
/// memory words the window's correct path reads before writing.
///
/// Words the window writes before reading need no stored value, and
/// words never referenced are omitted entirely — this is the three-
/// orders-of-magnitude saving over conventional checkpoints (§5).
#[derive(Debug, Clone, PartialEq)]
pub struct LiveState {
    /// Architectural register state at the window's warming start.
    pub arch: ArchState,
    /// Sorted `(word_address, value)` pairs read before being written.
    pub memory: Vec<(u64, u64)>,
    /// Memory footprint (bytes) of the full process image at collection
    /// time — what a *conventional* checkpoint would have stored.
    pub conventional_bytes: u64,
}

impl LiveState {
    /// Build the partial memory image for simulation.
    pub fn build_memory(&self) -> SparseMemory {
        let mut mem = SparseMemory::new();
        // `memory` is sorted by address, so the bulk installer resolves
        // each page once per run of same-page words.
        mem.install_words(&self.memory);
        mem
    }

    /// Number of stored memory words.
    pub fn word_count(&self) -> usize {
        self.memory.len()
    }
}

/// Incremental live-state collector driven by the creation pass.
///
/// Feed every committed instruction between the window's warming start
/// and its end (plus lookahead slack); the collector records each word
/// that is read before any in-window write.
#[derive(Debug)]
pub(crate) struct LiveStateCollector {
    arch: ArchState,
    conventional_bytes: u64,
    written: HashSet<u64>,
    recorded: HashSet<u64>,
    memory: Vec<(u64, u64)>,
}

impl LiveStateCollector {
    /// Begin collection at the emulator's current position.
    pub fn begin(emu: &Emulator<'_>) -> Self {
        LiveStateCollector {
            arch: emu.arch_state(),
            conventional_bytes: emu.memory().footprint_bytes(),
            written: HashSet::new(),
            recorded: HashSet::new(),
            memory: Vec::new(),
        }
    }

    /// Observe one committed instruction (after the emulator executed
    /// it; `mem_value` must be the value at the accessed address).
    pub fn observe(&mut self, op: MemOp, addr: u64, value_after: u64) {
        let word = addr & !7;
        match op {
            MemOp::Read => {
                if !self.written.contains(&word) && self.recorded.insert(word) {
                    self.memory.push((word, value_after));
                }
            }
            MemOp::Write => {
                self.written.insert(word);
            }
        }
    }

    /// Finish, producing the immutable live-state.
    pub fn finish(mut self) -> LiveState {
        self.memory.sort_unstable_by_key(|&(a, _)| a);
        LiveState {
            arch: self.arch,
            memory: self.memory,
            conventional_bytes: self.conventional_bytes,
        }
    }
}

/// Collect the live-state for an arbitrary `[from_seq, to_seq)` span of
/// `program` (used both by live-point creation and to model the
/// checkpoint sizes of other strategies, e.g. AW-MRRL's larger windows
/// in Figures 7/8).
///
/// # Panics
///
/// Panics if `from_seq > to_seq`.
pub fn collect_live_state(program: &Program, from_seq: u64, to_seq: u64) -> LiveState {
    assert!(from_seq <= to_seq, "window must be non-empty");
    let mut emu = Emulator::new(program);
    emu.run_to_seq(from_seq, |_| {});
    let mut collector = LiveStateCollector::begin(&emu);
    while emu.seq() < to_seq {
        let Some(di) = emu.step() else { break };
        if let Some((op, addr)) = di.mem {
            let value = emu.memory().read_u64(addr);
            collector.observe(op, addr, value);
        }
    }
    collector.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use spectral_isa::{ProgramBuilder, Reg};

    fn rw_program() -> Program {
        let mut b = ProgramBuilder::new("rw");
        let data = b.alloc_data(16);
        for i in 0..16 {
            b.init_word(data + i * 8, 100 + i);
        }
        b.li(Reg::R1, data as i64);
        // Read [0], write [1], read [1] (post-write), read [2].
        b.load(Reg::R2, Reg::R1, 0);
        b.li(Reg::R3, 55);
        b.store(Reg::R1, Reg::R3, 8);
        b.load(Reg::R4, Reg::R1, 8);
        b.load(Reg::R5, Reg::R1, 16);
        b.halt();
        b.build()
    }

    #[test]
    fn records_only_read_before_write() {
        let p = rw_program();
        let ls = collect_live_state(&p, 0, 100);
        let addrs: Vec<u64> = ls.memory.iter().map(|&(a, _)| a).collect();
        let data = 0x1000_0000u64;
        assert!(addrs.contains(&data), "word read first must be stored");
        assert!(addrs.contains(&(data + 16)), "word only read must be stored");
        assert!(!addrs.contains(&(data + 8)), "word written before its read needs no stored value");
        // Values are the pre-window contents.
        let v0 = ls.memory.iter().find(|&&(a, _)| a == data).unwrap().1;
        assert_eq!(v0, 100);
    }

    #[test]
    fn partial_memory_reproduces_execution() {
        // Resuming from live-state must execute the window identically.
        let p = rw_program();
        let ls = collect_live_state(&p, 0, 100);
        let mem = ls.build_memory();
        let mut emu = Emulator::from_state(&p, ls.arch.clone(), mem);
        while emu.step().is_some() {}
        assert_eq!(emu.regs().read(Reg::R2), 100);
        assert_eq!(emu.regs().read(Reg::R4), 55);
        assert_eq!(emu.regs().read(Reg::R5), 102);
    }

    #[test]
    fn windowed_collection_skips_outside_accesses() {
        let p = rw_program();
        // Start collection after the first load: word 0 not recorded.
        let ls = collect_live_state(&p, 3, 100);
        let addrs: Vec<u64> = ls.memory.iter().map(|&(a, _)| a).collect();
        assert!(!addrs.contains(&0x1000_0000));
    }

    #[test]
    fn conventional_footprint_recorded() {
        let p = rw_program();
        let ls = collect_live_state(&p, 0, 100);
        assert!(ls.conventional_bytes >= 4096, "at least one touched page");
        assert!(
            (ls.word_count() as u64) * 8 < ls.conventional_bytes,
            "live-state must be smaller than the conventional image"
        );
    }

    #[test]
    fn memory_sorted_for_deterministic_encoding() {
        let p = rw_program();
        let ls = collect_live_state(&p, 0, 100);
        assert!(ls.memory.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
