//! Crash-safe run checkpoints: periodic sidecar snapshots of a run's
//! raw observations, and bit-identical resume.
//!
//! # Why raw observations
//!
//! Live-points are mutually independent, and every runner already
//! reduces its estimate by replaying raw per-index observations in
//! ascending index order (see `ChunkLog::into_ordered`). A checkpoint
//! therefore stores exactly that replay input: for each processed
//! live-point index, the raw `f64` observation(s) with their bit
//! patterns preserved. Resume replays the stored values through the
//! same `push` sequence an uninterrupted run would have executed and
//! re-simulates only the missing indices — so a resumed run's estimate
//! is **bit-identical** to an uninterrupted run with the same policy,
//! not merely statistically equivalent.
//!
//! # Integrity and identity
//!
//! The sidecar file is written via [`spectral_faultd::write_atomic`]
//! (temp file + fsync + rename): a crash mid-checkpoint leaves the
//! previous complete checkpoint, never a torn file. The payload carries
//! a CRC32 trailer, and the header pins the run identity — run kind,
//! benchmark, library content hash, and a fingerprint of the full
//! [`RunPolicy`](crate::RunPolicy). [`RunCheckpoint::load`] verifies
//! the CRC and the runners verify the identity: a corrupt, truncated,
//! or mismatched checkpoint fails with a one-line diagnostic
//! ([`CoreError::Checkpoint`]) — it never panics and never silently
//! restarts from zero.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use spectral_codec::crc32;
use spectral_telemetry::{fnv1a64, CheckpointEvent, Counter};

use crate::error::CoreError;
use crate::runner::RunPolicy;

// Resume metrics: checkpoint files written, observations recorded into
// the live checkpoint, observations restored from a prior checkpoint
// instead of re-simulated, and checkpoint loads.
static TLM_CKPT_WRITES: Counter = Counter::new("core.resume.checkpoint_writes");
static TLM_RECORDED: Counter = Counter::new("core.resume.points_recorded");
static TLM_RESTORED: Counter = Counter::new("core.resume.points_restored");
static TLM_LOADS: Counter = Counter::new("core.resume.loads");

/// First line of every checkpoint sidecar file.
pub const CHECKPOINT_MAGIC: &str = "spectral-ckpt v1";

/// Which runner wrote a checkpoint. Resuming requires the same kind:
/// observation layouts differ (CPI, matched pair, per-machine sweep
/// row) and replaying one kind's data through another would be silent
/// corruption.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunKind {
    /// [`OnlineRunner`](crate::OnlineRunner): one CPI per point.
    Online,
    /// [`MatchedRunner`](crate::MatchedRunner): a `(base, experiment)`
    /// CPI pair per point.
    Matched,
    /// [`SweepRunner`](crate::SweepRunner): one CPI per machine per
    /// point.
    Sweep,
}

impl RunKind {
    /// Stable on-disk name.
    pub fn as_str(self) -> &'static str {
        match self {
            RunKind::Online => "online",
            RunKind::Matched => "matched",
            RunKind::Sweep => "sweep",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "online" => Some(RunKind::Online),
            "matched" => Some(RunKind::Matched),
            "sweep" => Some(RunKind::Sweep),
            _ => None,
        }
    }
}

impl fmt::Display for RunKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Fingerprint of a full [`RunPolicy`], pinned into every checkpoint.
///
/// Resume demands the *same* policy as the interrupted run — the
/// bit-identity guarantee is "identical command, restarted", so every
/// field participates (via the `Debug` rendering, which spells out all
/// of them).
pub fn policy_fingerprint(policy: &RunPolicy) -> u64 {
    fnv1a64(format!("{policy:?}").as_bytes())
}

/// Fingerprint of a runner's machine configuration(s) via their `Debug`
/// rendering. Runners fold (XOR) this into
/// [`CheckpointSpec::policy_fp`] so a checkpoint also pins *what
/// hardware was being simulated* — resuming a matched-pair run against
/// a different experiment variant is an identity mismatch, not a
/// silently corrupted estimate.
pub fn config_fingerprint(configs: &impl fmt::Debug) -> u64 {
    fnv1a64(format!("{configs:?}").as_bytes())
}

/// The identity a checkpoint binds to: what was being run, against
/// which library, under which policy. Validated field-by-field on
/// resume so a mismatch yields a diagnostic naming the offending
/// field, not a corrupt estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointSpec {
    /// Which runner wrote the checkpoint.
    pub kind: RunKind,
    /// Benchmark the run was sampling.
    pub benchmark: String,
    /// Content hash of the live-point library
    /// ([`LivePointLibrary::content_hash`](crate::LivePointLibrary::content_hash)).
    pub library_hash: u32,
    /// [`policy_fingerprint`] of the run's policy, XORed with the
    /// [`config_fingerprint`] of the runner's machine
    /// configuration(s).
    pub policy_fp: u64,
    /// `f64`s per observation: 1 (online), 2 (matched pair), or the
    /// sweep's machine count.
    pub arity: usize,
}

/// A run checkpoint: the [`CheckpointSpec`] identity plus every raw
/// observation recorded so far, keyed by live-point index.
///
/// Runners maintain one internally (see
/// [`Recovery`]); it is also directly loadable for
/// inspection — e.g. an experiment binary surfacing resume lineage.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    spec: CheckpointSpec,
    obs: BTreeMap<u64, Vec<f64>>,
}

fn ckpt_err(path: &Path, reason: impl Into<String>) -> CoreError {
    CoreError::Checkpoint { path: path.to_path_buf(), reason: reason.into() }
}

impl RunCheckpoint {
    /// An empty checkpoint bound to `spec`.
    pub fn new(spec: CheckpointSpec) -> Self {
        RunCheckpoint { spec, obs: BTreeMap::new() }
    }

    /// The identity header.
    pub fn spec(&self) -> &CheckpointSpec {
        &self.spec
    }

    /// Number of live-points with recorded observations.
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// Whether no observations are recorded yet.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// Record the observation row for live-point `index` (idempotent:
    /// re-recording an index overwrites with identical data).
    pub fn record(&mut self, index: u64, obs: &[f64]) {
        debug_assert_eq!(obs.len(), self.spec.arity);
        self.obs.insert(index, obs.to_vec());
    }

    /// The stored observation row for `index`, if any.
    pub fn get(&self, index: u64) -> Option<&[f64]> {
        self.obs.get(&index).map(|v| v.as_slice())
    }

    /// Serialize to the sidecar text format (see [`Self::load`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{CHECKPOINT_MAGIC}");
        let s = &self.spec;
        let _ = writeln!(
            out,
            "meta kind={} arity={} library={:08x} policy={:016x} bench={}",
            s.kind, s.arity, s.library_hash, s.policy_fp, s.benchmark
        );
        for (index, row) in &self.obs {
            let _ = write!(out, "o {index}");
            for v in row {
                let _ = write!(out, " {:016x}", v.to_bits());
            }
            out.push('\n');
        }
        let crc = crc32::checksum(out.as_bytes());
        let _ = writeln!(out, "crc {crc:08x}");
        out.into_bytes()
    }

    /// Write the checkpoint to `path` atomically (temp + fsync +
    /// rename, fault site `core.ckpt.write`): a crash at any instant
    /// leaves the previous checkpoint or this one, never a torn file.
    pub fn save(&self, path: &Path) -> Result<(), CoreError> {
        spectral_faultd::retry("core.ckpt.write", || {
            spectral_faultd::write_atomic("core.ckpt.write", path, &self.to_bytes())
        })
        .map_err(|e| ckpt_err(path, format!("write failed: {e}")))?;
        TLM_CKPT_WRITES.inc();
        CheckpointEvent { path: &path.to_string_lossy(), points: self.obs.len() as u64 }.emit();
        Ok(())
    }

    /// Load and verify a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Every failure — unreadable file, bad magic, CRC mismatch,
    /// truncation, malformed line — is a [`CoreError::Checkpoint`]
    /// whose display is a single line naming the file and the fault.
    /// This function never panics on arbitrary input and never returns
    /// an empty checkpoint for a corrupt file.
    pub fn load(path: &Path) -> Result<Self, CoreError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| ckpt_err(path, format!("cannot read: {e}")))?;
        let body = text
            .strip_suffix('\n')
            .ok_or_else(|| ckpt_err(path, "truncated: missing final newline"))?;
        let (payload, crc_line) = body
            .rsplit_once('\n')
            .ok_or_else(|| ckpt_err(path, "truncated: no checksum trailer"))?;
        let stored = crc_line
            .strip_prefix("crc ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or_else(|| ckpt_err(path, "truncated: malformed checksum trailer"))?;
        // The CRC covers the payload *including* its trailing newline,
        // exactly as `to_bytes` computed it.
        let mut covered = payload.to_string();
        covered.push('\n');
        let actual = crc32::checksum(covered.as_bytes());
        if actual != stored {
            return Err(ckpt_err(
                path,
                format!("corrupt: checksum mismatch (stored {stored:08x}, computed {actual:08x})"),
            ));
        }
        let mut lines = payload.lines();
        match lines.next() {
            Some(CHECKPOINT_MAGIC) => {}
            _ => return Err(ckpt_err(path, "not a spectral checkpoint (bad magic line)")),
        }
        let meta = lines
            .next()
            .and_then(|l| l.strip_prefix("meta "))
            .ok_or_else(|| ckpt_err(path, "corrupt: missing meta line"))?;
        let field = |key: &str| -> Result<&str, CoreError> {
            meta.split(' ')
                .find_map(|kv| kv.strip_prefix(key).and_then(|r| r.strip_prefix('=')))
                .ok_or_else(|| ckpt_err(path, format!("corrupt: meta line lacks '{key}='")))
        };
        let spec = CheckpointSpec {
            kind: RunKind::parse(field("kind")?)
                .ok_or_else(|| ckpt_err(path, "corrupt: unknown run kind in meta line"))?,
            arity: field("arity")?
                .parse()
                .map_err(|_| ckpt_err(path, "corrupt: bad arity in meta line"))?,
            library_hash: u32::from_str_radix(field("library")?, 16)
                .map_err(|_| ckpt_err(path, "corrupt: bad library hash in meta line"))?,
            policy_fp: u64::from_str_radix(field("policy")?, 16)
                .map_err(|_| ckpt_err(path, "corrupt: bad policy fingerprint in meta line"))?,
            // `bench=` is the final field; benchmark names never embed
            // spaces, so plain splitting recovers it.
            benchmark: field("bench")?.to_string(),
        };
        if spec.arity == 0 {
            return Err(ckpt_err(path, "corrupt: zero observation arity"));
        }
        let mut obs = BTreeMap::new();
        for (n, line) in lines.enumerate() {
            let bad = || ckpt_err(path, format!("corrupt: malformed observation line {}", n + 3));
            let rest = line.strip_prefix("o ").ok_or_else(bad)?;
            let mut words = rest.split(' ');
            let index: u64 = words.next().and_then(|w| w.parse().ok()).ok_or_else(bad)?;
            let mut row = Vec::with_capacity(spec.arity);
            for w in words {
                let bits = u64::from_str_radix(w, 16).map_err(|_| bad())?;
                row.push(f64::from_bits(bits));
            }
            if row.len() != spec.arity {
                return Err(bad());
            }
            obs.insert(index, row);
        }
        TLM_LOADS.inc();
        Ok(RunCheckpoint { spec, obs })
    }
}

/// Crash-recovery configuration for a run: where to checkpoint, what
/// to resume from, and (for tests and drills) a deterministic
/// interruption point.
///
/// The default [`Recovery::none()`] costs nothing on the run's hot
/// path. With a checkpoint configured, the runner snapshots every
/// recorded observation to the sidecar every `every` fresh points;
/// with a resume source, previously recorded observations are replayed
/// instead of re-simulated, preserving the exact estimator push
/// sequence — see the module docs for the bit-identity argument.
///
/// # Example
///
/// Interrupt a run (here deterministically, via the
/// [`abort_after`](Recovery::abort_after) drill) and resume it to the
/// bit-identical estimate:
///
/// ```
/// use spectral_core::{
///     CoreError, CreationConfig, LivePointLibrary, OnlineRunner, Recovery, RunPolicy,
/// };
/// use spectral_uarch::MachineConfig;
///
/// let program = spectral_workloads::tiny().build();
/// let machine = MachineConfig::eight_way();
/// let cfg = CreationConfig::for_machine(&machine).with_sample_size(6);
/// let library = LivePointLibrary::create(&program, &cfg)?;
/// let runner = OnlineRunner::new(&library, machine);
/// let policy = RunPolicy { stop_at_target: false, ..RunPolicy::default() };
/// let ckpt = std::env::temp_dir().join(format!("doc-resume-{}.ckpt", std::process::id()));
///
/// // "Crash" after three points; the flushed sidecar survives.
/// let crash = Recovery::none().checkpoint_to(&ckpt, 2).abort_after(3);
/// let err = runner.run_recoverable(&program, &policy, &crash).unwrap_err();
/// assert!(matches!(err, CoreError::Interrupted { .. }));
///
/// // Restart: restored points replay, the rest simulate fresh.
/// let resumed =
///     runner.run_recoverable(&program, &policy, &Recovery::none().resume_from(&ckpt))?;
/// let baseline = runner.run(&program, &policy)?;
/// assert_eq!(resumed.mean().to_bits(), baseline.mean().to_bits());
/// std::fs::remove_file(&ckpt).ok();
/// # Ok::<(), spectral_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct Recovery {
    pub(crate) checkpoint: Option<(PathBuf, usize)>,
    pub(crate) resume: Option<PathBuf>,
    pub(crate) abort_after: Option<u64>,
}

impl Recovery {
    /// No checkpointing, no resume — the default for plain runs.
    pub fn none() -> Self {
        Recovery::default()
    }

    /// Checkpoint to `path` every `every` freshly simulated points
    /// (clamped to at least 1). The final state is also flushed when
    /// the run completes or is interrupted by [`Self::abort_after`].
    pub fn checkpoint_to(mut self, path: impl Into<PathBuf>, every: usize) -> Self {
        self.checkpoint = Some((path.into(), every.max(1)));
        self
    }

    /// Resume from the checkpoint at `path`. The file is loaded and
    /// validated against the run's identity when the run starts;
    /// any mismatch or corruption fails the run with a one-line
    /// [`CoreError::Checkpoint`] diagnostic.
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Deterministically interrupt the run with
    /// [`CoreError::Interrupted`] after `n` freshly simulated points,
    /// flushing the checkpoint first. This is the in-process stand-in
    /// for `kill -9` used by the differential resume tests and by
    /// recovery drills; `SPECTRAL_FAULT_KILL` provides the real thing
    /// for spawned processes.
    pub fn abort_after(mut self, n: u64) -> Self {
        self.abort_after = Some(n.max(1));
        self
    }

    /// Whether this configuration does anything at all.
    pub fn is_active(&self) -> bool {
        self.checkpoint.is_some() || self.resume.is_some() || self.abort_after.is_some()
    }
}

#[derive(Debug)]
struct CkptWriter {
    path: PathBuf,
    every: usize,
    state: Mutex<(RunCheckpoint, usize)>,
}

/// Live recovery state for one run: the restored observation map, the
/// in-flight checkpoint writer, and the interruption countdown. Shared
/// by reference across parallel workers.
#[derive(Debug)]
pub(crate) struct RecoverySession {
    restored: Option<RunCheckpoint>,
    writer: Option<CkptWriter>,
    abort_after: Option<u64>,
    fresh: AtomicU64,
}

impl RecoverySession {
    /// Validate `recovery` against the run identity and open the
    /// session: loads + verifies the resume checkpoint (if any) and
    /// seeds the checkpoint writer with the restored observations so
    /// the sidecar stays complete across repeated interruptions.
    pub fn start(recovery: &Recovery, spec: CheckpointSpec) -> Result<Self, CoreError> {
        let restored = match &recovery.resume {
            Some(path) => {
                let ckpt = RunCheckpoint::load(path)?;
                let found = ckpt.spec();
                let mismatch = |what: &str, expected: &dyn fmt::Display, got: &dyn fmt::Display| {
                    ckpt_err(
                        path,
                        format!(
                            "identity mismatch: {what} differs \
                             (checkpoint {got}, this run {expected}); refusing to resume"
                        ),
                    )
                };
                if found.kind != spec.kind {
                    return Err(mismatch("run kind", &spec.kind, &found.kind));
                }
                if found.benchmark != spec.benchmark {
                    return Err(mismatch("benchmark", &spec.benchmark, &found.benchmark));
                }
                if found.library_hash != spec.library_hash {
                    return Err(mismatch(
                        "library content hash",
                        &format_args!("{:08x}", spec.library_hash),
                        &format_args!("{:08x}", found.library_hash),
                    ));
                }
                if found.policy_fp != spec.policy_fp {
                    return Err(mismatch(
                        "run policy",
                        &format_args!("{:016x}", spec.policy_fp),
                        &format_args!("{:016x}", found.policy_fp),
                    ));
                }
                if found.arity != spec.arity {
                    return Err(mismatch("observation arity", &spec.arity, &found.arity));
                }
                Some(ckpt)
            }
            None => None,
        };
        let writer = recovery.checkpoint.as_ref().map(|(path, every)| CkptWriter {
            path: path.clone(),
            every: (*every).max(1),
            state: Mutex::new((
                restored.clone().unwrap_or_else(|| RunCheckpoint::new(spec.clone())),
                0,
            )),
        });
        Ok(RecoverySession {
            restored,
            writer,
            abort_after: recovery.abort_after,
            fresh: AtomicU64::new(0),
        })
    }

    /// The restored observation row for live-point `index`, if the
    /// resume checkpoint recorded one. Counts
    /// `core.resume.points_restored`.
    pub fn restored(&self, index: usize) -> Option<&[f64]> {
        let row = self.restored.as_ref()?.get(index as u64)?;
        TLM_RESTORED.inc();
        Some(row)
    }

    /// Whether `index` would be restored (no counter side effect) —
    /// used to exclude restored indices from decode prefetch.
    pub fn knows(&self, index: usize) -> bool {
        self.restored.as_ref().is_some_and(|c| c.get(index as u64).is_some())
    }

    /// Record one freshly simulated observation row, checkpointing on
    /// the configured cadence, and fire the interruption drill when
    /// armed.
    pub fn record(&self, index: usize, obs: &[f64]) -> Result<(), CoreError> {
        if let Some(w) = &self.writer {
            TLM_RECORDED.inc();
            let mut guard = w.state.lock().expect("checkpoint lock");
            let (ckpt, dirty) = &mut *guard;
            ckpt.record(index as u64, obs);
            *dirty += 1;
            if *dirty >= w.every {
                *dirty = 0;
                ckpt.save(&w.path)?;
            }
        }
        let fresh = self.fresh.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(n) = self.abort_after {
            if fresh >= n {
                self.flush()?;
                return Err(CoreError::Interrupted { processed: fresh });
            }
        }
        Ok(())
    }

    /// Flush the in-flight checkpoint if it holds unwritten
    /// observations.
    pub fn flush(&self) -> Result<(), CoreError> {
        if let Some(w) = &self.writer {
            let mut guard = w.state.lock().expect("checkpoint lock");
            let (ckpt, dirty) = &mut *guard;
            if *dirty > 0 {
                *dirty = 0;
                ckpt.save(&w.path)?;
            }
        }
        Ok(())
    }

    /// Final flush at run completion.
    pub fn finish(&self) -> Result<(), CoreError> {
        self.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> CheckpointSpec {
        CheckpointSpec {
            kind: RunKind::Online,
            benchmark: "tiny".into(),
            library_hash: 0xDEADBEEF,
            policy_fp: 0x0123_4567_89AB_CDEF,
            arity: 1,
        }
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("resume-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_bit_exact() {
        let mut ckpt = RunCheckpoint::new(spec());
        // Values chosen to stress bit-exactness: subnormal, negative
        // zero, a NaN payload, and an ordinary CPI.
        ckpt.record(0, &[1.2345678901234567]);
        ckpt.record(7, &[f64::from_bits(0x0000_0000_0000_0001)]);
        ckpt.record(3, &[-0.0]);
        ckpt.record(9, &[f64::from_bits(0x7FF8_0000_0000_1234)]);
        let path = tmp("roundtrip.ckpt");
        ckpt.save(&path).unwrap();
        let back = RunCheckpoint::load(&path).unwrap();
        assert_eq!(back.spec(), ckpt.spec());
        assert_eq!(back.len(), 4);
        for idx in [0u64, 3, 7, 9] {
            let a = ckpt.get(idx).unwrap();
            let b = back.get(idx).unwrap();
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "index {idx}");
            }
        }
    }

    #[test]
    fn missing_file_is_one_line_error() {
        let err = RunCheckpoint::load(Path::new("/nonexistent/nope.ckpt")).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("nope.ckpt"), "{msg}");
        assert!(!msg.contains('\n'), "diagnostic must be one line: {msg}");
    }

    #[test]
    fn corrupt_crc_detected() {
        let ckpt = RunCheckpoint::new(spec());
        let path = tmp("crc.ckpt");
        let mut bytes = ckpt.to_bytes();
        let flip = bytes.len() / 2;
        bytes[flip] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let err = RunCheckpoint::load(&path).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum") || msg.contains("magic") || msg.contains("truncated"),
            "{msg}"
        );
        assert!(!msg.contains('\n'), "{msg}");
    }

    #[test]
    fn truncation_detected() {
        let mut ckpt = RunCheckpoint::new(spec());
        ckpt.record(0, &[1.0]);
        ckpt.record(1, &[2.0]);
        let bytes = ckpt.to_bytes();
        let path = tmp("trunc.ckpt");
        for cut in [1, bytes.len() / 3, bytes.len() - 2] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = RunCheckpoint::load(&path).unwrap_err();
            let msg = err.to_string();
            assert!(!msg.contains('\n'), "{msg}");
        }
    }

    #[test]
    fn identity_mismatch_refuses_resume() {
        let ckpt = RunCheckpoint::new(spec());
        let path = tmp("mismatch.ckpt");
        ckpt.save(&path).unwrap();
        let recovery = Recovery::none().resume_from(&path);
        let other = CheckpointSpec { library_hash: 0x1111_1111, ..spec() };
        let err = RecoverySession::start(&recovery, other).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("library content hash"), "{msg}");
        assert!(msg.contains("refusing to resume"), "{msg}");
        assert!(!msg.contains('\n'), "{msg}");
    }

    #[test]
    fn session_checkpoints_on_cadence_and_restores() {
        let path = tmp("cadence.ckpt");
        let _ = std::fs::remove_file(&path);
        let session =
            RecoverySession::start(&Recovery::none().checkpoint_to(&path, 2), spec()).unwrap();
        session.record(0, &[1.5]).unwrap();
        assert!(!path.exists(), "below cadence: no write yet");
        session.record(1, &[2.5]).unwrap();
        assert!(path.exists(), "cadence reached: checkpoint written");
        session.record(2, &[3.5]).unwrap();
        session.finish().unwrap();
        let ckpt = RunCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt.len(), 3, "final flush captures the tail");

        let resumed = RecoverySession::start(&Recovery::none().resume_from(&path), spec()).unwrap();
        assert_eq!(resumed.restored(1), Some(&[2.5][..]));
        assert!(resumed.restored(5).is_none());
        assert!(resumed.knows(2) && !resumed.knows(5));
    }

    #[test]
    fn abort_after_interrupts_with_flushed_checkpoint() {
        let path = tmp("abort.ckpt");
        let _ = std::fs::remove_file(&path);
        let recovery = Recovery::none().checkpoint_to(&path, 1000).abort_after(3);
        let session = RecoverySession::start(&recovery, spec()).unwrap();
        session.record(0, &[1.0]).unwrap();
        session.record(1, &[2.0]).unwrap();
        let err = session.record(2, &[3.0]).unwrap_err();
        assert!(matches!(err, CoreError::Interrupted { processed: 3 }), "{err}");
        let ckpt = RunCheckpoint::load(&path).unwrap();
        assert_eq!(ckpt.len(), 3, "interruption flushes everything recorded so far");
    }
}
