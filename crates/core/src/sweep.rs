//! Decode-once design-space sweeps: simulate each live-point under many
//! machine configurations per decode.
//!
//! The paper charts decompress + DER decode as the per-point
//! "checkpoint processing" cost (Fig 8); a design-space study that runs
//! one [`OnlineRunner`](crate::OnlineRunner) per candidate pays that
//! cost once *per configuration*. [`SweepRunner`] pays it once per
//! point: every decoded live-point is simulated under all N candidate
//! machines before the next record is touched, so the decode cost is
//! amortized N ways and — because every configuration sees exactly the
//! same points — the per-config estimates are matched-pair-comparable
//! by construction (§6.2).

use std::sync::atomic::Ordering;

use spectral_isa::Program;
use spectral_stats::{Confidence, MatchedPair, OnlineEstimator, MIN_SAMPLE_SIZE};
use spectral_telemetry::{ProfilePhase, Stopwatch, WorkerTimeline};
use spectral_uarch::MachineConfig;

use crate::error::CoreError;
use crate::health::{HealthMonitor, PointMeta};
use crate::library::{DecodeScratch, LivePointLibrary};
use crate::resume::{
    config_fingerprint, policy_fingerprint, CheckpointSpec, Recovery, RecoverySession, RunKind,
};
use crate::runner::{
    decode_point, note_early_stop, overshoot_of, simulate_point, Estimate, RunPolicy,
    ShardCoordinator,
};
use crate::sched::{ChunkLog, PrefetchRing, WorkQueue};

/// Emit one sweep progress record per configuration from the merged
/// estimators (metric `cpi`, `config: Some(j)`). `overshoot` is
/// non-zero only on the run's closing records.
fn emit_progress(
    monitor: &HealthMonitor,
    estimators: &[OnlineEstimator],
    policy: &RunPolicy,
    overshoot: u64,
) {
    for (j, est) in estimators.iter().enumerate() {
        monitor.progress(
            "cpi",
            Some(j),
            est.count(),
            est.mean(),
            est.half_width(policy.confidence),
            est.half_width(Confidence::C95),
            est.mean(),
            policy,
            overshoot,
        );
    }
}

/// Accumulated sweep state: one estimator per configuration, one
/// matched pair per non-baseline configuration (vs configuration 0),
/// and per-config trajectories.
#[derive(Debug, Clone)]
struct SweepProgress {
    estimators: Vec<OnlineEstimator>,
    pairs: Vec<MatchedPair>,
    trajectories: Vec<Vec<(u64, f64, f64)>>,
}

impl SweepProgress {
    fn new(configs: usize) -> Self {
        SweepProgress {
            estimators: vec![OnlineEstimator::new(); configs],
            pairs: vec![MatchedPair::new(); configs.saturating_sub(1)],
            trajectories: vec![Vec::new(); configs],
        }
    }

    /// Record one live-point's CPI under every configuration.
    fn push(&mut self, cpis: &[f64]) {
        for (est, &cpi) in self.estimators.iter_mut().zip(cpis) {
            est.push(cpi);
        }
        for (pair, &cpi) in self.pairs.iter_mut().zip(&cpis[1..]) {
            pair.push(cpis[0], cpi);
        }
    }

    /// Merge another partial (parallel merge batches); trajectories are
    /// not merged — the index-ordered replay regenerates them.
    fn merge(&mut self, other: &SweepProgress) {
        for (est, o) in self.estimators.iter_mut().zip(&other.estimators) {
            est.merge(o);
        }
        for (pair, o) in self.pairs.iter_mut().zip(&other.pairs) {
            pair.merge(o);
        }
    }

    fn record_trajectory(&mut self, policy: &RunPolicy) {
        for (est, traj) in self.estimators.iter().zip(self.trajectories.iter_mut()) {
            traj.push((est.count(), est.mean(), est.half_width(policy.confidence)));
        }
    }

    /// Whether every configuration's interval meets the policy target.
    fn all_reached(&self, policy: &RunPolicy) -> bool {
        self.estimators.iter().all(|est| {
            est.count() >= MIN_SAMPLE_SIZE
                && est.relative_half_width(policy.confidence) <= policy.target_rel_err
        })
    }
}

/// Result of a design-space sweep.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    estimates: Vec<Estimate>,
    pairs: Vec<MatchedPair>,
    confidence: spectral_stats::Confidence,
    processed: usize,
    reached_target: bool,
}

impl SweepOutcome {
    /// Per-configuration estimates, in the order the configurations were
    /// given.
    pub fn estimates(&self) -> &[Estimate] {
        &self.estimates
    }

    /// The estimate for configuration `index`.
    pub fn estimate(&self, index: usize) -> &Estimate {
        &self.estimates[index]
    }

    /// Matched-pair comparison of configuration `index` (≥ 1) against
    /// the baseline (configuration 0) — exact pairing, because the sweep
    /// runs every configuration on the same points.
    pub fn pair_vs_baseline(&self, index: usize) -> Option<&MatchedPair> {
        index.checked_sub(1).and_then(|i| self.pairs.get(i))
    }

    /// Whether configuration `index`'s CPI change vs the baseline is
    /// statistically distinguishable from zero.
    pub fn significant_vs_baseline(&self, index: usize) -> bool {
        self.pair_vs_baseline(index).is_some_and(|p| p.significant(self.confidence))
    }

    /// Live-points processed (each decoded once and simulated under
    /// every configuration).
    pub fn processed(&self) -> usize {
        self.processed
    }

    /// Whether every configuration reached the confidence target before
    /// the library (or the cap) was exhausted.
    pub fn reached_target(&self) -> bool {
        self.reached_target
    }
}

/// Decode-once design-space runner: processes the (shuffled) library in
/// order, simulating each decoded live-point under every candidate
/// machine before moving on.
#[derive(Debug)]
pub struct SweepRunner<'l> {
    library: &'l LivePointLibrary,
    machines: Vec<MachineConfig>,
}

impl<'l> SweepRunner<'l> {
    /// Create a sweep over `machines` (configuration 0 is the baseline
    /// for matched-pair comparisons). All machines must be within the
    /// library's creation bounds.
    ///
    /// # Panics
    ///
    /// Panics when `machines` is empty.
    pub fn new(library: &'l LivePointLibrary, machines: Vec<MachineConfig>) -> Self {
        assert!(!machines.is_empty(), "a sweep needs at least one machine");
        SweepRunner { library, machines }
    }

    /// The candidate machine configurations.
    pub fn machines(&self) -> &[MachineConfig] {
        &self.machines
    }

    fn limit(&self, policy: &RunPolicy) -> usize {
        policy.max_points.unwrap_or(usize::MAX).min(self.library.len())
    }

    /// Simulate one decoded live-point under every configuration.
    /// Returns the per-config CPIs plus the point's processing metadata
    /// (one decode; simulate cost summed over all configurations).
    fn measure_point(
        &self,
        index: usize,
        program: &Program,
        scratch: &mut DecodeScratch,
    ) -> Result<(Vec<f64>, PointMeta), CoreError> {
        let (lp, decode_ns) = decode_point(self.library, index, scratch)?; // the one decode
        let mut simulate_ns = 0u64;
        let cpis = self
            .machines
            .iter()
            .map(|m| {
                simulate_point(&lp, program, m).map(|(stats, ns)| {
                    simulate_ns += ns;
                    stats.cpi()
                })
            })
            .collect::<Result<Vec<f64>, CoreError>>()?;
        let meta = PointMeta {
            decode_ns,
            simulate_ns,
            detail_start: lp.window.detail_start,
            measure_start: lp.window.measure_start,
        };
        Ok((cpis, meta))
    }

    fn outcome(&self, progress: SweepProgress, policy: &RunPolicy, reached: bool) -> SweepOutcome {
        let processed = progress.estimators[0].count() as usize;
        let estimates = progress
            .estimators
            .into_iter()
            .zip(progress.trajectories)
            .map(|(est, traj)| {
                let conf_reached = est.count() >= MIN_SAMPLE_SIZE
                    && est.relative_half_width(policy.confidence) <= policy.target_rel_err;
                Estimate::from_parts(
                    est,
                    policy.confidence,
                    est.count() as usize,
                    conf_reached,
                    traj,
                )
            })
            .collect();
        SweepOutcome {
            estimates,
            pairs: progress.pairs,
            confidence: policy.confidence,
            processed,
            reached_target: reached,
        }
    }

    /// Serial sweep: runs until every configuration's interval meets the
    /// policy target, the cap is hit, or the library is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates decode and simulation faults; an empty library is
    /// [`CoreError::EmptyLibrary`].
    pub fn run(&self, program: &Program, policy: &RunPolicy) -> Result<SweepOutcome, CoreError> {
        self.run_recoverable(program, policy, &Recovery::none())
    }

    /// The checkpoint identity for this runner: one CPI per candidate
    /// machine per live-point.
    fn spec(&self, program: &Program, policy: &RunPolicy) -> CheckpointSpec {
        CheckpointSpec {
            kind: RunKind::Sweep,
            benchmark: program.name().to_owned(),
            library_hash: self.library.content_hash(),
            policy_fp: policy_fingerprint(policy) ^ config_fingerprint(&self.machines),
            arity: self.machines.len(),
        }
    }

    /// Serial sweep with crash recovery (see [`Recovery`] and
    /// [`OnlineRunner::run_recoverable`](crate::OnlineRunner::run_recoverable)
    /// — checkpoints store each point's per-configuration CPI row and
    /// resume replays the exact push sequence).
    ///
    /// # Errors
    ///
    /// Everything [`Self::run`] raises, plus [`CoreError::Checkpoint`]
    /// and [`CoreError::Interrupted`].
    pub fn run_recoverable(
        &self,
        program: &Program,
        policy: &RunPolicy,
        recovery: &Recovery,
    ) -> Result<SweepOutcome, CoreError> {
        if self.library.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let session = RecoverySession::start(recovery, self.spec(program, policy))?;
        let _span = spectral_telemetry::span("run.sweep");
        let seq = spectral_telemetry::next_run_seq();
        let _profile = spectral_telemetry::run_scope(seq, "sweep", 1);
        let mut tl = WorkerTimeline::new(seq, "sweep", 0);
        let limit = self.limit(policy);
        let mut progress = SweepProgress::new(self.machines.len());
        let mut reached = false;
        let mut reached_at = 0u64;
        let mut scratch = DecodeScratch::new();
        let mut monitor = HealthMonitor::new(seq, "sweep", 0, policy);
        let progress_stride = policy.merge_stride.max(1) as u64;
        let mut n = 0;
        for i in 0..limit {
            match session.restored(i) {
                Some(row) => progress.push(row),
                None => {
                    // The anomaly stream watches the baseline
                    // configuration's CPI; the point's simulate cost
                    // covers every configuration.
                    let (cpis, meta) = self.measure_point(i, program, &mut scratch)?;
                    tl.note(ProfilePhase::Decode, meta.decode_ns);
                    tl.note(ProfilePhase::Simulate, meta.simulate_ns);
                    progress.push(&cpis);
                    monitor.observe(i as u64, cpis[0], &meta);
                    session.record(i, &cpis)?;
                }
            }
            n = progress.estimators[0].count();
            if policy.trajectory_stride > 0 && n.is_multiple_of(policy.trajectory_stride as u64) {
                progress.record_trajectory(policy);
            }
            if n.is_multiple_of(progress_stride) {
                emit_progress(&monitor, &progress.estimators, policy, 0);
            }
            if !reached && progress.all_reached(policy) {
                reached = true;
                reached_at = n;
                note_early_stop(n);
            }
            if reached && policy.stop_at_target {
                break;
            }
        }
        let overshoot = overshoot_of(reached, reached_at, n);
        if !n.is_multiple_of(progress_stride) || overshoot > 0 {
            emit_progress(&monitor, &progress.estimators, policy, overshoot);
        }
        session.finish()?;
        Ok(self.outcome(progress, policy, reached))
    }

    /// Parallel sweep on the scheduling machinery of
    /// [`OnlineRunner::run_parallel`](crate::OnlineRunner::run_parallel):
    /// workers claim index chunks per [`RunPolicy::sched`], decode each
    /// point once (up to [`RunPolicy::prefetch`] points ahead),
    /// simulate all configurations, and merge thread-local partials
    /// into the shared state every [`RunPolicy::merge_stride`] points;
    /// termination requires every configuration to meet the target on
    /// the merged state. Per-config CPI vectors are logged per chunk
    /// and replayed in ascending index order after the join — including
    /// trajectory regeneration — so an exhaustive run is bit-identical
    /// to serial.
    ///
    /// # Errors
    ///
    /// Propagates the first worker fault; an empty library is
    /// [`CoreError::EmptyLibrary`].
    pub fn run_parallel(
        &self,
        program: &Program,
        policy: &RunPolicy,
        threads: usize,
    ) -> Result<SweepOutcome, CoreError> {
        self.run_parallel_recoverable(program, policy, threads, &Recovery::none())
    }

    /// Parallel sweep with crash recovery (see [`Recovery`] and
    /// [`OnlineRunner::run_parallel_recoverable`](crate::OnlineRunner::run_parallel_recoverable)).
    ///
    /// # Errors
    ///
    /// Everything [`Self::run_parallel`] raises, plus
    /// [`CoreError::Checkpoint`] and [`CoreError::Interrupted`].
    pub fn run_parallel_recoverable(
        &self,
        program: &Program,
        policy: &RunPolicy,
        threads: usize,
        recovery: &Recovery,
    ) -> Result<SweepOutcome, CoreError> {
        if self.library.is_empty() {
            return Err(CoreError::EmptyLibrary);
        }
        let session = RecoverySession::start(recovery, self.spec(program, policy))?;
        let _span = spectral_telemetry::span("run.sweep_parallel");
        let limit = self.limit(policy);
        let threads = threads.clamp(1, limit);
        let merge_stride = policy.merge_stride.max(1) as u64;
        let configs = self.machines.len();
        let coord: ShardCoordinator<SweepProgress> =
            ShardCoordinator::with_progress(SweepProgress::new(configs));
        let cursor = policy.cursor(limit, threads);

        let flush =
            |batch: &mut SweepProgress, monitor: &HealthMonitor, tl: &mut WorkerTimeline| {
                let mut guard = tl.enter(ProfilePhase::MergeWait);
                let mut merged = coord.lock_progress();
                guard.switch(ProfilePhase::Merge);
                merged.merge(batch);
                let done = merged.all_reached(policy);
                let count = merged.estimators[0].count();
                let estimators = merged.estimators.clone();
                drop(merged);
                drop(guard);
                *batch = SweepProgress::new(configs);
                emit_progress(monitor, &estimators, policy, 0);
                if policy.stop_at_target {
                    if let Some(cursor) = &cursor {
                        // The sweep stops on its worst configuration: feed
                        // the chunk sizer the largest relative half-width.
                        let worst = estimators
                            .iter()
                            .map(|e| e.relative_half_width(policy.confidence))
                            .fold(f64::NEG_INFINITY, f64::max);
                        cursor.note_rel_error(worst, policy.target_rel_err);
                    }
                }
                if done {
                    coord.note_reached(count, policy);
                }
            };

        let seq = spectral_telemetry::next_run_seq();
        let _profile = spectral_telemetry::run_scope(seq, "sweep", threads);
        let logs: Vec<ChunkLog<Vec<f64>>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            for worker in 0..threads {
                let coord = &coord;
                let cursor = cursor.as_ref();
                let flush = &flush;
                let session = &session;
                handles.push(scope.spawn(move || {
                    let wall = Stopwatch::start();
                    let mut busy = 0u64;
                    let mut log = ChunkLog::new();
                    let mut batch = SweepProgress::new(configs);
                    let mut scratch = DecodeScratch::new();
                    let mut ring = PrefetchRing::new(policy.prefetch, worker);
                    let mut monitor = HealthMonitor::new(seq, "sweep", worker, policy);
                    let mut tl = WorkerTimeline::new(seq, "sweep", worker);
                    let mut queue = match cursor {
                        Some(c) => WorkQueue::chunked(c, worker),
                        None => WorkQueue::stride(worker, threads, limit),
                    };
                    'chunks: while !coord.stop.load(Ordering::Relaxed) {
                        let Some(chunk) = queue.next_chunk(&mut tl) else { break };
                        log.begin(chunk.start, chunk.len());
                        // Restored indices never re-decode; the
                        // prefetch ring sees only the fresh remainder.
                        let mut pending = chunk.clone().filter(|&i| !session.knows(i));
                        for index in chunk {
                            if coord.stop.load(Ordering::Relaxed) {
                                ring.clear();
                                break 'chunks;
                            }
                            let cpis = if let Some(row) = session.restored(index) {
                                row.to_vec()
                            } else {
                                if let Err(e) =
                                    ring.fill(self.library, &mut pending, &mut scratch, &mut tl)
                                {
                                    coord.fail(e);
                                    break 'chunks;
                                }
                                let (lp, decode_ns) =
                                    ring.pop().expect("ring holds the current index");
                                let mut simulate_ns = 0u64;
                                let cpis = self
                                    .machines
                                    .iter()
                                    .map(|m| {
                                        simulate_point(&lp, program, m).map(|(stats, ns)| {
                                            simulate_ns += ns;
                                            stats.cpi()
                                        })
                                    })
                                    .collect::<Result<Vec<f64>, CoreError>>();
                                let cpis = match cpis {
                                    Ok(c) => c,
                                    Err(e) => {
                                        coord.fail(e);
                                        break 'chunks;
                                    }
                                };
                                tl.note(ProfilePhase::Simulate, simulate_ns);
                                busy += decode_ns + simulate_ns;
                                let meta = PointMeta {
                                    decode_ns,
                                    simulate_ns,
                                    detail_start: lp.window.detail_start,
                                    measure_start: lp.window.measure_start,
                                };
                                monitor.observe(index as u64, cpis[0], &meta);
                                if let Err(e) = session.record(index, &cpis) {
                                    coord.fail(e);
                                    break 'chunks;
                                }
                                cpis
                            };
                            batch.push(&cpis);
                            log.push(cpis);
                            if batch.estimators[0].count() >= merge_stride {
                                flush(&mut batch, &monitor, &mut tl);
                            }
                        }
                    }
                    if batch.estimators[0].count() > 0 {
                        flush(&mut batch, &monitor, &mut tl);
                    }
                    queue.finish();
                    crate::sched::note_worker_time(busy, wall.ns());
                    log
                }));
            }
            handles.into_iter().map(|h| h.join().expect("worker threads do not panic")).collect()
        });

        let (reached, stop_n, fault) = coord.finish();
        if let Some(e) = fault {
            return Err(e);
        }
        session.finish()?;
        // Deterministic reduction: replay each point's per-config CPIs
        // in ascending index order, regenerating the trajectories
        // exactly as the serial loop would.
        let mut progress = SweepProgress::new(configs);
        let mut n = 0;
        for cpis in ChunkLog::into_ordered(logs) {
            progress.push(&cpis);
            n = progress.estimators[0].count();
            if policy.trajectory_stride > 0 && n.is_multiple_of(policy.trajectory_stride as u64) {
                progress.record_trajectory(policy);
            }
        }
        // Close the event stream with the replayed estimators and the
        // exact overshoot past the stop point.
        let monitor = HealthMonitor::new(seq, "sweep", 0, policy);
        emit_progress(&monitor, &progress.estimators, policy, overshoot_of(reached, stop_n, n));
        Ok(self.outcome(progress, policy, reached))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::creation::CreationConfig;
    use crate::runner::OnlineRunner;
    use spectral_workloads::tiny;

    fn setup() -> (Program, LivePointLibrary) {
        let p = tiny().build();
        let cfg = CreationConfig::for_machine(&spectral_uarch::MachineConfig::eight_way())
            .with_sample_size(35);
        let lib = LivePointLibrary::create(&p, &cfg).unwrap();
        (p, lib)
    }

    fn candidates() -> Vec<MachineConfig> {
        let base = MachineConfig::eight_way();
        let slow_l2 = {
            let mut m = base.clone();
            m.lat.l2 = 16;
            m
        };
        vec![base, slow_l2, MachineConfig::eight_way().with_mem_latency(200)]
    }

    fn exhaustive() -> RunPolicy {
        RunPolicy { target_rel_err: 1e-12, ..RunPolicy::default() }
    }

    #[test]
    fn sweep_matches_independent_online_runs() {
        let (p, lib) = setup();
        let machines = candidates();
        let sweep = SweepRunner::new(&lib, machines.clone()).run(&p, &exhaustive()).unwrap();
        assert_eq!(sweep.processed(), lib.len());
        assert!(!sweep.reached_target());
        for (j, machine) in machines.iter().enumerate() {
            let solo = OnlineRunner::new(&lib, machine.clone()).run(&p, &exhaustive()).unwrap();
            // Same points in the same order: estimators agree exactly.
            assert_eq!(sweep.estimate(j).estimator(), solo.estimator(), "config {j}");
        }
    }

    #[test]
    fn sweep_pairs_match_matched_runner() {
        let (p, lib) = setup();
        let machines = candidates();
        let sweep = SweepRunner::new(&lib, machines.clone()).run(&p, &exhaustive()).unwrap();
        let mp = crate::MatchedRunner::new(&lib, machines[0].clone(), machines[2].clone())
            .run(&p, &exhaustive())
            .unwrap();
        let pair = sweep.pair_vs_baseline(2).unwrap();
        assert_eq!(pair.count(), mp.pair().count());
        assert_eq!(pair.delta_mean(), mp.pair().delta_mean());
    }

    #[test]
    fn parallel_sweep_matches_serial() {
        let (p, lib) = setup();
        let machines = candidates();
        let serial = SweepRunner::new(&lib, machines.clone()).run(&p, &exhaustive()).unwrap();
        let parallel = SweepRunner::new(&lib, machines).run_parallel(&p, &exhaustive(), 4).unwrap();
        assert_eq!(serial.processed(), parallel.processed());
        // Index-ordered replay: exhaustive parallel sweeps are
        // bit-identical to serial, estimators and trajectories alike.
        for j in 0..serial.estimates().len() {
            let (s, q) = (serial.estimate(j), parallel.estimate(j));
            assert_eq!(s.estimator(), q.estimator(), "config {j}");
            assert_eq!(s.trajectory(), q.trajectory(), "config {j} trajectory");
        }
        // Matched pairs see identical point sets in both modes.
        for j in 1..serial.estimates().len() {
            let (s, q) =
                (serial.pair_vs_baseline(j).unwrap(), parallel.pair_vs_baseline(j).unwrap());
            assert_eq!(s.count(), q.count());
            assert_eq!(s.delta_mean().to_bits(), q.delta_mean().to_bits());
        }
    }

    #[test]
    fn early_termination_requires_all_configs() {
        let (p, lib) = setup();
        let out = SweepRunner::new(&lib, candidates())
            .run(&p, &RunPolicy { target_rel_err: 0.5, ..RunPolicy::default() })
            .unwrap();
        assert!(out.reached_target(), "a 50% target should be reached quickly");
        assert!(out.processed() >= MIN_SAMPLE_SIZE as usize);
        for est in out.estimates() {
            assert!(est.reached_target());
        }
    }

    #[test]
    fn empty_machine_list_panics() {
        let (_, lib) = setup();
        let result = std::panic::catch_unwind(|| SweepRunner::new(&lib, Vec::new()));
        assert!(result.is_err());
    }
}
