//! On-disk behavior of the registry: append-only index semantics,
//! content-addressed artifact dedup, multi-handle interleaving, and
//! parse-error reporting.

use std::path::PathBuf;

use spectral_registry::{load_records, Registry, RegistryError, RunRecord};

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spectral_registry_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn record(binary: &str, run_id: &str) -> RunRecord {
    let mut r = RunRecord::new("run", binary, "gcc-like", "8-wide", 4);
    r.run_id = run_id.into();
    r.points_processed = Some(500);
    r.run_secs = Some(0.25);
    r.run_rate = Some(2000.0);
    r
}

#[test]
fn append_then_load_preserves_order_and_content() {
    let dir = temp_dir("order");
    let reg = Registry::open(&dir).unwrap();
    assert!(reg.load().unwrap().is_empty(), "fresh registry is empty, not an error");

    let a = record("online", "aaaa000000000001-1");
    let b = record("matched", "bbbb000000000001-1");
    reg.append(&a).unwrap();
    reg.append(&b).unwrap();

    let loaded = reg.load().unwrap();
    assert_eq!(loaded, vec![a, b]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn artifacts_are_content_addressed_and_dedup() {
    let dir = temp_dir("objects");
    let reg = Registry::open(&dir).unwrap();
    let p1 = reg.store_artifact("json", b"{\"x\":1}").unwrap();
    let p2 = reg.store_artifact("json", b"{\"x\":1}").unwrap();
    let p3 = reg.store_artifact("json", b"{\"x\":2}").unwrap();
    assert_eq!(p1, p2, "identical content shares an address");
    assert_ne!(p1, p3);
    assert!(p1.starts_with("objects/"));
    assert_eq!(reg.read_artifact(&p1).unwrap(), b"{\"x\":1}");
    assert_eq!(reg.read_artifact(&p3).unwrap(), b"{\"x\":2}");
    // Exactly two object files on disk (no dup, no leftover temp file).
    let mut count = 0;
    for shard in std::fs::read_dir(dir.join("objects")).unwrap() {
        for f in std::fs::read_dir(shard.unwrap().path()).unwrap() {
            let name = f.unwrap().file_name();
            assert!(name.to_string_lossy().ends_with(".json"), "unexpected object file {name:?}");
            count += 1;
        }
    }
    assert_eq!(count, 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn two_handles_appending_interleave_whole_records() {
    // Simulates two processes sharing one registry directory: every
    // append is a single O_APPEND line write, so all records survive.
    let dir = temp_dir("interleave");
    let h1 = Registry::open(&dir).unwrap();
    let h2 = Registry::open(&dir).unwrap();
    for i in 0..10 {
        h1.append(&record("online", &format!("aaaa000000000001-{i}"))).unwrap();
        h2.append(&record("sweep", &format!("bbbb000000000001-{i}"))).unwrap();
    }
    let loaded = load_records(&dir).unwrap();
    assert_eq!(loaded.len(), 20);
    assert_eq!(loaded.iter().filter(|r| r.binary == "online").count(), 10);
    assert_eq!(loaded.iter().filter(|r| r.binary == "sweep").count(), 10);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_index_line_reports_its_number() {
    let dir = temp_dir("malformed");
    let reg = Registry::open(&dir).unwrap();
    reg.append(&record("online", "aaaa000000000001-1")).unwrap();
    std::fs::write(
        reg.index_path(),
        format!("{}\n\nnot json at all\n", record("online", "aaaa000000000001-1").to_json_line()),
    )
    .unwrap();
    match reg.load() {
        Err(RegistryError::Parse { line, .. }) => assert_eq!(line, 3, "blank lines still count"),
        other => panic!("expected parse error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_trailing_line_is_dropped_not_fatal() {
    // A process killed mid-append leaves a partial final line with no
    // trailing newline. That uncommitted tail must be dropped, while
    // every durably committed record still loads.
    let dir = temp_dir("torn");
    let reg = Registry::open(&dir).unwrap();
    let a = record("online", "aaaa000000000001-1");
    let b = record("matched", "bbbb000000000001-1");
    reg.append(&a).unwrap();
    reg.append(&b).unwrap();

    let full = std::fs::read_to_string(reg.index_path()).unwrap();
    let half = record("sweep", "cccc000000000001-1").to_json_line();
    let torn = &half[..half.len() / 2]; // mid-line crash: no trailing '\n'
    std::fs::write(reg.index_path(), format!("{full}{torn}")).unwrap();

    let loaded = reg.load().expect("torn tail recovers");
    assert_eq!(loaded, vec![a.clone(), b.clone()]);

    // A *newline-terminated* garbage line is corruption, not a torn
    // append: still a hard error naming the line.
    std::fs::write(reg.index_path(), format!("{full}{torn}\n")).unwrap();
    match reg.load() {
        Err(RegistryError::Parse { line, .. }) => assert_eq!(line, 3),
        other => panic!("expected parse error, got {other:?}"),
    }

    // Appending after a crash repairs the torn tail first: the
    // fragment is truncated away, so the new record cannot merge into
    // it and the index is fully well-formed again.
    std::fs::write(reg.index_path(), format!("{full}{torn}")).unwrap();
    let c = record("sweep", "cccc000000000001-2");
    reg.append(&c).unwrap();
    assert_eq!(reg.load().expect("repaired index parses"), vec![a, b, c]);
    let _ = std::fs::remove_dir_all(&dir);
}
