//! The registry's record type: one JSON line per completed run.

use spectral_telemetry::{
    json_number as number, json_quote as quote, EstimateSummary, JsonValue, RunManifest, RunSummary,
};

/// Schema version stamped into every record line.
pub const RECORD_VERSION: u32 = 1;

/// One completed run (or bench result), distilled for cross-run
/// queries. Serialized as a single JSON line in `index.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Record schema version: [`RECORD_VERSION`] for records written by
    /// this build. Readers are tolerant — index lines that predate the
    /// field parse with version 1.
    pub schema_version: u32,
    /// Collision-resistant run identifier
    /// ([`spectral_telemetry::derive_run_id`]).
    pub run_id: String,
    /// Code-version label ([`code_version`](crate::code_version)).
    pub code_version: String,
    /// Record kind: `"run"` for experiment runs, `"bench"` for
    /// benchmark results.
    pub kind: String,
    /// Emitting binary (e.g. `online`).
    pub binary: String,
    /// Benchmark / workload identifier.
    pub benchmark: String,
    /// Machine configuration label.
    pub machine: String,
    /// Worker thread count (0 = sequential path).
    pub threads: usize,
    /// RNG seed, if one applies.
    pub seed: Option<u64>,
    /// Content hash of the live-point library processed, if known.
    pub library_id: Option<String>,
    /// Container format version of that library (1 = monolithic v1
    /// stream, 2 = paged), if known.
    pub library_format: Option<u64>,
    /// Wall-clock at append time, milliseconds since the Unix epoch
    /// (the trend x-axis).
    pub unix_ms: u64,
    /// Live-points actually processed.
    pub points_processed: Option<u64>,
    /// Decoded-point cache hits over the run (`core.lib.cache_hits`),
    /// when the emitting process sampled its metrics.
    pub cache_hits: Option<u64>,
    /// Decoded-point cache misses (`core.lib.cache_misses`).
    pub cache_misses: Option<u64>,
    /// Decoded-point cache evictions (`core.lib.cache_evictions`).
    pub cache_evictions: Option<u64>,
    /// Seconds spent in run phases (phases whose name starts with
    /// `run`; all phases when none do).
    pub run_secs: Option<f64>,
    /// Throughput: `points_processed / run_secs` (points per second).
    pub run_rate: Option<f64>,
    /// Final estimate ± half-width, when the run produced one.
    pub estimate: Option<EstimateSummary>,
    /// Convergence summaries distilled from the sampling-health stream
    /// (one per `(seq, run, metric, config)` series).
    pub convergence: Vec<RunSummary>,
    /// Registry-relative path of the stored manifest artifact, if any.
    pub manifest_path: Option<String>,
    /// Checkpoint file this run resumed from (`--resume <ckpt>`), when
    /// the run restarted an interrupted one. `doctor analyze` surfaces
    /// this lineage so resumed runs are distinguishable in trends.
    pub resumed_from: Option<String>,
    /// Free-form key/value annotations (carried over from the
    /// manifest's notes).
    pub notes: Vec<(String, String)>,
}

impl RunRecord {
    /// A minimal record; callers fill in the optional fields.
    pub fn new(
        kind: impl Into<String>,
        binary: impl Into<String>,
        benchmark: impl Into<String>,
        machine: impl Into<String>,
        threads: usize,
    ) -> Self {
        RunRecord {
            schema_version: RECORD_VERSION,
            run_id: String::new(),
            code_version: crate::code_version(),
            kind: kind.into(),
            binary: binary.into(),
            benchmark: benchmark.into(),
            machine: machine.into(),
            threads,
            seed: None,
            library_id: None,
            library_format: None,
            unix_ms: now_unix_ms(),
            points_processed: None,
            cache_hits: None,
            cache_misses: None,
            cache_evictions: None,
            run_secs: None,
            run_rate: None,
            estimate: None,
            convergence: Vec::new(),
            manifest_path: None,
            resumed_from: None,
            notes: Vec::new(),
        }
    }

    /// Distill a completed run's manifest (plus the convergence
    /// summaries drained from the in-process tally) into a record. The
    /// run rate divides points processed by the seconds spent in phases
    /// whose name starts with `run` (falling back to total phase time),
    /// so library-creation cost doesn't pollute the throughput
    /// trajectory.
    pub fn from_manifest(manifest: &RunManifest, convergence: Vec<RunSummary>) -> Self {
        let mut r = RunRecord::new(
            "run",
            manifest.binary.clone(),
            manifest.benchmark.clone(),
            manifest.machine.clone(),
            manifest.threads,
        );
        r.run_id = manifest.run_id.clone().unwrap_or_default();
        r.seed = manifest.seed;
        r.library_id = manifest.library_id.clone();
        r.library_format = manifest.library_format;
        r.points_processed = manifest.points_processed;
        let run_secs: f64 =
            manifest.phases.iter().filter(|p| p.name.starts_with("run")).map(|p| p.secs).sum();
        let total_secs: f64 = manifest.phases.iter().map(|p| p.secs).sum();
        let secs = if run_secs > 0.0 { run_secs } else { total_secs };
        if secs > 0.0 {
            r.run_secs = Some(secs);
            if let Some(points) = manifest.points_processed {
                r.run_rate = Some(points as f64 / secs);
            }
        }
        r.estimate = manifest.estimate.clone();
        r.convergence = convergence;
        r.notes = manifest.notes.clone();
        // Resume lineage travels as a manifest note; lift it into the
        // dedicated field so cross-run queries don't grep notes.
        r.resumed_from =
            manifest.notes.iter().find(|(k, _)| k == "resumed_from").map(|(_, v)| v.clone());
        r
    }

    /// Serialize as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(512);
        s.push('{');
        push_field(&mut s, "version", RECORD_VERSION.to_string());
        push_field(&mut s, "schema_version", self.schema_version.to_string());
        push_field(&mut s, "run_id", quote(&self.run_id));
        push_field(&mut s, "code_version", quote(&self.code_version));
        push_field(&mut s, "kind", quote(&self.kind));
        push_field(&mut s, "binary", quote(&self.binary));
        push_field(&mut s, "benchmark", quote(&self.benchmark));
        push_field(&mut s, "machine", quote(&self.machine));
        push_field(&mut s, "threads", self.threads.to_string());
        push_field(&mut s, "seed", opt_u64(self.seed));
        let library_id = match &self.library_id {
            Some(id) => quote(id),
            None => "null".to_owned(),
        };
        push_field(&mut s, "library_id", library_id);
        push_field(&mut s, "library_format", opt_u64(self.library_format));
        push_field(&mut s, "unix_ms", self.unix_ms.to_string());
        push_field(&mut s, "points_processed", opt_u64(self.points_processed));
        push_field(&mut s, "cache_hits", opt_u64(self.cache_hits));
        push_field(&mut s, "cache_misses", opt_u64(self.cache_misses));
        push_field(&mut s, "cache_evictions", opt_u64(self.cache_evictions));
        push_field(&mut s, "run_secs", opt_num(self.run_secs));
        push_field(&mut s, "run_rate", opt_num(self.run_rate));
        let estimate = match &self.estimate {
            Some(e) => format!(
                "{{\"mean\":{},\"half_width\":{},\"relative_half_width\":{},\
                 \"reached_target\":{}}}",
                number(e.mean),
                number(e.half_width),
                number(e.relative_half_width),
                e.reached_target
            ),
            None => "null".to_owned(),
        };
        push_field(&mut s, "estimate", estimate);
        let convergence: Vec<String> = self.convergence.iter().map(summary_json).collect();
        push_field(&mut s, "convergence", format!("[{}]", convergence.join(",")));
        let manifest_path = match &self.manifest_path {
            Some(p) => quote(p),
            None => "null".to_owned(),
        };
        push_field(&mut s, "manifest_path", manifest_path);
        let resumed_from = match &self.resumed_from {
            Some(p) => quote(p),
            None => "null".to_owned(),
        };
        push_field(&mut s, "resumed_from", resumed_from);
        let notes: Vec<String> =
            self.notes.iter().map(|(k, v)| format!("{}:{}", quote(k), quote(v))).collect();
        s.push_str(&format!("\"notes\":{{{}}}", notes.join(",")));
        s.push('}');
        s
    }

    /// Parse a record back from one index line.
    pub fn from_json(line: &str) -> Result<RunRecord, String> {
        let doc = JsonValue::parse(line).map_err(|e| e.to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(JsonValue::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("missing string field '{key}'"))
        };
        let mut r = RunRecord::new(
            str_field("kind")?,
            str_field("binary")?,
            str_field("benchmark")?,
            str_field("machine")?,
            doc.get("threads").and_then(JsonValue::as_u64).ok_or("missing 'threads'")? as usize,
        );
        // Tolerant reader: lines that predate `schema_version` fall
        // back to the legacy `version` stamp, then to 1.
        r.schema_version = doc
            .get("schema_version")
            .or_else(|| doc.get("version"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(1) as u32;
        r.run_id = str_field("run_id")?;
        r.code_version = str_field("code_version")?;
        r.seed = doc.get("seed").and_then(JsonValue::as_u64);
        r.library_id = doc.get("library_id").and_then(JsonValue::as_str).map(str::to_owned);
        r.library_format = doc.get("library_format").and_then(JsonValue::as_u64);
        r.unix_ms = doc.get("unix_ms").and_then(JsonValue::as_u64).ok_or("missing 'unix_ms'")?;
        r.points_processed = doc.get("points_processed").and_then(JsonValue::as_u64);
        r.cache_hits = doc.get("cache_hits").and_then(JsonValue::as_u64);
        r.cache_misses = doc.get("cache_misses").and_then(JsonValue::as_u64);
        r.cache_evictions = doc.get("cache_evictions").and_then(JsonValue::as_u64);
        r.run_secs = doc.get("run_secs").and_then(JsonValue::as_f64);
        r.run_rate = doc.get("run_rate").and_then(JsonValue::as_f64);
        if let Some(e) = doc.get("estimate") {
            if let (Some(mean), Some(half_width)) = (
                e.get("mean").and_then(JsonValue::as_f64),
                e.get("half_width").and_then(JsonValue::as_f64),
            ) {
                r.estimate = Some(EstimateSummary {
                    mean,
                    half_width,
                    relative_half_width: e
                        .get("relative_half_width")
                        .and_then(JsonValue::as_f64)
                        .unwrap_or(0.0),
                    reached_target: e
                        .get("reached_target")
                        .and_then(JsonValue::as_bool)
                        .unwrap_or(false),
                });
            }
        }
        if let Some(items) = doc.get("convergence").and_then(JsonValue::as_arr) {
            for item in items {
                r.convergence.push(summary_from_json(item)?);
            }
        }
        r.manifest_path = doc.get("manifest_path").and_then(JsonValue::as_str).map(str::to_owned);
        r.resumed_from = doc.get("resumed_from").and_then(JsonValue::as_str).map(str::to_owned);
        if let Some(notes) = doc.get("notes").and_then(JsonValue::as_obj) {
            for (k, v) in notes {
                if let Some(s) = v.as_str() {
                    r.notes.push((k.clone(), s.to_owned()));
                }
            }
        }
        Ok(r)
    }
}

fn push_field(s: &mut String, key: &str, value: String) {
    s.push_str(&format!("{}:{value},", quote(key)));
}

fn opt_u64(v: Option<u64>) -> String {
    match v {
        Some(n) => n.to_string(),
        None => "null".to_owned(),
    }
}

fn opt_num(v: Option<f64>) -> String {
    match v {
        Some(n) => number(n),
        None => "null".to_owned(),
    }
}

fn summary_json(s: &RunSummary) -> String {
    let config = match s.config {
        Some(c) => c.to_string(),
        None => "null".to_owned(),
    };
    let first_eligible = opt_u64(s.first_eligible_n);
    format!(
        "{{\"run_id\":{},\"seq\":{},\"run\":{},\"metric\":{},\"config\":{config},\"n\":{},\
         \"mean\":{},\"half_width\":{},\"rel_half_width\":{},\"target_rel_err\":{},\
         \"eligible\":{},\"first_eligible_n\":{first_eligible},\"overshoot\":{},\
         \"anomalies\":{},\"workers\":{},\"min_shard_points\":{},\"max_shard_points\":{},\
         \"min_shard_busy_ns\":{},\"max_shard_busy_ns\":{}}}",
        quote(&s.run_id),
        s.seq,
        quote(&s.run),
        quote(&s.metric),
        s.n,
        number(s.mean),
        number(s.half_width),
        number(s.rel_half_width),
        number(s.target_rel_err),
        s.eligible,
        s.overshoot,
        s.anomalies,
        s.workers,
        s.min_shard_points,
        s.max_shard_points,
        s.min_shard_busy_ns,
        s.max_shard_busy_ns,
    )
}

fn summary_from_json(doc: &JsonValue) -> Result<RunSummary, String> {
    let str_of = |key: &str| -> String {
        doc.get(key).and_then(JsonValue::as_str).unwrap_or_default().to_owned()
    };
    let u64_of = |key: &str| doc.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let f64_of = |key: &str| doc.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0);
    if doc.get("metric").and_then(JsonValue::as_str).is_none() {
        return Err("convergence entry missing 'metric'".to_owned());
    }
    Ok(RunSummary {
        run_id: str_of("run_id"),
        seq: u64_of("seq"),
        run: str_of("run"),
        metric: str_of("metric"),
        config: doc.get("config").and_then(JsonValue::as_u64).map(|c| c as usize),
        n: u64_of("n"),
        mean: f64_of("mean"),
        half_width: f64_of("half_width"),
        rel_half_width: f64_of("rel_half_width"),
        target_rel_err: f64_of("target_rel_err"),
        eligible: doc.get("eligible").and_then(JsonValue::as_bool).unwrap_or(false),
        first_eligible_n: doc.get("first_eligible_n").and_then(JsonValue::as_u64),
        overshoot: u64_of("overshoot"),
        anomalies: u64_of("anomalies"),
        workers: u64_of("workers") as usize,
        min_shard_points: u64_of("min_shard_points"),
        max_shard_points: u64_of("max_shard_points"),
        min_shard_busy_ns: u64_of("min_shard_busy_ns"),
        max_shard_busy_ns: u64_of("max_shard_busy_ns"),
    })
}

fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_summary() -> RunSummary {
        RunSummary {
            run_id: "00decafc0ffee123-1".into(),
            seq: 1,
            run: "online".into(),
            metric: "cpi".into(),
            config: None,
            n: 40,
            mean: 1.372,
            half_width: 0.041,
            rel_half_width: 0.0299,
            target_rel_err: 0.03,
            eligible: true,
            first_eligible_n: Some(36),
            overshoot: 4,
            anomalies: 2,
            workers: 4,
            min_shard_points: 8,
            max_shard_points: 12,
            min_shard_busy_ns: 600,
            max_shard_busy_ns: 2_000,
        }
    }

    fn sample_record() -> RunRecord {
        let mut r = RunRecord::new("run", "online", "gcc-like", "8-wide", 4);
        r.run_id = "00decafc0ffee123-1".into();
        r.code_version = "v1".into();
        r.seed = Some(42);
        r.library_id = Some("crc32:deadbeef".into());
        r.library_format = Some(2);
        r.unix_ms = 1_700_000_000_000;
        r.points_processed = Some(640);
        r.cache_hits = Some(500);
        r.cache_misses = Some(140);
        r.cache_evictions = Some(20);
        r.run_secs = Some(0.31);
        r.run_rate = Some(640.0 / 0.31);
        r.estimate = Some(EstimateSummary {
            mean: 1.372,
            half_width: 0.041,
            relative_half_width: 0.0299,
            reached_target: true,
        });
        r.convergence = vec![
            sample_summary(),
            RunSummary {
                config: Some(2),
                metric: "delta_cpi".into(),
                first_eligible_n: None,
                ..sample_summary()
            },
        ];
        r.manifest_path = Some("objects/3f/3fa9c1d2e4b57a86.json".into());
        r.resumed_from = Some("out/online.ckpt".into());
        r.notes = vec![("quick".into(), "true".into())];
        r
    }

    #[test]
    fn record_round_trips_as_one_json_line() {
        let r = sample_record();
        let line = r.to_json_line();
        assert!(!line.contains('\n'), "index records must be single lines");
        let back = RunRecord::from_json(&line).expect("parse back");
        assert_eq!(back, r);
    }

    #[test]
    fn minimal_record_round_trips() {
        let r = RunRecord::new("bench", "scaling", "synthetic", "host", 0);
        let back = RunRecord::from_json(&r.to_json_line()).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.estimate, None);
        assert!(back.convergence.is_empty());
    }

    #[test]
    fn record_without_schema_version_parses_tolerantly() {
        // Index lines appended by older builds carry no
        // `schema_version` (the earliest not even `version`): both
        // still parse, defaulting to 1.
        let r = sample_record();
        let line = r.to_json_line();
        let without_schema = line.replace("\"schema_version\":1,", "");
        let back = RunRecord::from_json(&without_schema).expect("tolerant reader");
        assert_eq!(back.schema_version, RECORD_VERSION, "falls back to legacy 'version'");
        let without_both = without_schema.replace("\"version\":1,", "");
        let back = RunRecord::from_json(&without_both).expect("tolerant reader");
        assert_eq!(back.schema_version, 1);
        assert_eq!(back.run_id, r.run_id);
    }

    #[test]
    fn non_finite_rates_cannot_corrupt_the_index() {
        // A NaN CI half-width (or Inf run rate) must still produce a
        // parseable line: the JSON writer pins non-finite floats to 0.
        let mut r = sample_record();
        r.run_rate = Some(f64::INFINITY);
        r.estimate = Some(EstimateSummary {
            mean: 1.0,
            half_width: f64::NAN,
            relative_half_width: f64::NAN,
            reached_target: false,
        });
        r.convergence[0].rel_half_width = f64::NEG_INFINITY;
        let line = r.to_json_line();
        let back = RunRecord::from_json(&line).expect("still parses");
        assert_eq!(back.run_rate, Some(0.0));
        assert_eq!(back.estimate.as_ref().unwrap().half_width, 0.0);
        assert_eq!(back.convergence[0].rel_half_width, 0.0);
    }

    #[test]
    fn from_manifest_prefers_run_phases_for_the_rate() {
        let mut m = RunManifest::new("online", "gcc-like", "8-wide", 4);
        m.run_id = Some("feed5eed00000001-3".into());
        m.seed = Some(7);
        m.points_processed = Some(1000);
        m.phase("create_library", 9.0).phase("run_exhaustive", 2.0).phase("run_early", 0.5);
        m.set_estimate(1.4, 0.05, true);
        m.note("quick", "true");
        m.note("resumed_from", "out/online.ckpt");
        let r = RunRecord::from_manifest(&m, vec![sample_summary()]);
        assert_eq!(r.run_id, "feed5eed00000001-3");
        assert_eq!(r.resumed_from.as_deref(), Some("out/online.ckpt"));
        assert_eq!(r.run_secs, Some(2.5));
        assert_eq!(r.run_rate, Some(400.0));
        assert_eq!(r.convergence.len(), 1);
        assert_eq!(
            r.notes,
            vec![
                ("quick".to_owned(), "true".to_owned()),
                ("resumed_from".to_owned(), "out/online.ckpt".to_owned()),
            ]
        );

        // No run-prefixed phases: total time is the denominator.
        let mut m2 = RunManifest::new("characterize", "gcc-like", "8-wide", 1);
        m2.points_processed = Some(100);
        m2.phase("analyze", 4.0);
        let r2 = RunRecord::from_manifest(&m2, Vec::new());
        assert_eq!(r2.run_secs, Some(4.0));
        assert_eq!(r2.run_rate, Some(25.0));
    }
}
