//! # spectral-registry — the cross-run telemetry registry
//!
//! Every other observability artifact in this workspace is *per-run*:
//! a manifest, an events file, a `BENCH_*.json`. Nothing connects runs
//! across invocations, so there is no perf trajectory and no way to ask
//! "did this commit make `online` slower?". This crate is that
//! connective tissue: an **append-only, on-disk run registry** that
//! experiment binaries (and the benches) append one record to at the
//! end of every run.
//!
//! ## On-disk layout
//!
//! ```text
//! <registry dir>/
//!   index.jsonl          # one RunRecord JSON object per line, append-only
//!   objects/
//!     3f/
//!       3fa9c1d2e4b57a86.json   # content-addressed artifacts (manifests)
//! ```
//!
//! * **`index.jsonl`** — the registry proper. Appends go through a
//!   single `O_APPEND` write of one newline-terminated line, so
//!   concurrent processes appending to a shared registry interleave
//!   whole records rather than corrupting each other. Records are never
//!   rewritten; consumers ([`Registry::load`]) see history in append
//!   order.
//! * **`objects/`** — a content-addressed store for bulky artifacts
//!   (full manifests with embedded metrics snapshots). The address is
//!   the FNV-1a 64 hash of the content, so identical artifacts
//!   deduplicate for free and records can reference them by relative
//!   path without coupling the index to their size.
//!
//! ## What a record carries
//!
//! A [`RunRecord`] distills one run for cross-run queries: the
//! collision-resistant `run_id` (see
//! [`spectral_telemetry::derive_run_id`]), a `code_version` label (the
//! `SPECTRAL_CODE_VERSION` environment variable — CI stamps commit ids
//! or `baseline`/`candidate` into it), what ran where (binary,
//! benchmark, machine, threads, seed), throughput (points processed,
//! run-phase seconds, the derived run rate), the final estimate, and
//! the convergence summaries distilled from the sampling-health stream
//! by the in-process tally ([`spectral_telemetry::take_run_summaries`]).
//!
//! `spectral-doctor trend` renders per-benchmark/per-machine time
//! series over these records, `doctor gate` turns a baseline set and a
//! candidate set into a statistical regression verdict, and
//! `doctor watch` tails a registry directory live.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod record;

pub use record::{RunRecord, RECORD_VERSION};

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Environment variable naming the registry directory; when set, the
/// experiment harness appends to it even without `--registry`.
pub const REGISTRY_ENV: &str = "SPECTRAL_REGISTRY";

/// Environment variable labeling the running code version
/// (`code_version()` falls back to `"dev"` when unset).
pub const CODE_VERSION_ENV: &str = "SPECTRAL_CODE_VERSION";

/// The code-version label for new records: `SPECTRAL_CODE_VERSION`, or
/// `"dev"` when unset/empty. CI stamps `baseline` / `candidate` /
/// commit ids into the variable to make run-sets selectable by
/// `doctor gate`.
pub fn code_version() -> String {
    match std::env::var(CODE_VERSION_ENV) {
        Ok(v) if !v.is_empty() => v,
        _ => "dev".to_owned(),
    }
}

/// Registry failure: an I/O problem or a corrupt index line.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// `index.jsonl` line `line` (1-based) failed to parse.
    Parse {
        /// 1-based line number in `index.jsonl`.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry i/o error: {e}"),
            RegistryError::Parse { line, message } => {
                write!(f, "registry index line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// Handle to one on-disk registry directory (see the module docs for
/// the layout). Cheap to construct; every operation re-opens the files
/// it touches, so handles can be held across long runs and shared
/// between processes.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
}

impl Registry {
    /// Open (creating if necessary) the registry at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Registry> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("objects"))?;
        Ok(Registry { dir })
    }

    /// Open the registry named by `SPECTRAL_REGISTRY`, if the variable
    /// is set and non-empty.
    pub fn from_env() -> std::io::Result<Option<Registry>> {
        match std::env::var_os(REGISTRY_ENV) {
            Some(dir) if !dir.is_empty() => Ok(Some(Registry::open(PathBuf::from(dir))?)),
            _ => Ok(None),
        }
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the append-only index.
    pub fn index_path(&self) -> PathBuf {
        self.dir.join("index.jsonl")
    }

    /// Append one record to the index. The write is a single
    /// `O_APPEND` line, so concurrent appenders interleave whole
    /// records.
    pub fn append(&self, record: &RunRecord) -> std::io::Result<()> {
        let mut line = record.to_json_line();
        line.push('\n');
        let mut f = OpenOptions::new().create(true).append(true).open(self.index_path())?;
        f.write_all(line.as_bytes())
    }

    /// Store `bytes` in the content-addressed object store and return
    /// its registry-relative path (`objects/3f/3fa9c1….<ext>`).
    /// Identical content always maps to the same path; re-storing it is
    /// a no-op.
    pub fn store_artifact(&self, ext: &str, bytes: &[u8]) -> std::io::Result<String> {
        let hash = spectral_telemetry::fnv1a64(bytes);
        let name = format!("{hash:016x}");
        let rel = format!("objects/{}/{name}.{ext}", &name[..2]);
        let path = self.dir.join(&rel);
        if !path.exists() {
            fs::create_dir_all(path.parent().expect("object path has a parent"))?;
            // Write-then-rename so a concurrent reader never sees a
            // half-written artifact at its final address.
            let tmp = path.with_extension(format!("{ext}.tmp{}", std::process::id()));
            let mut f = File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            fs::rename(&tmp, &path)?;
        }
        Ok(rel)
    }

    /// Read an artifact previously stored via
    /// [`store_artifact`](Registry::store_artifact) by its
    /// registry-relative path.
    pub fn read_artifact(&self, rel: &str) -> std::io::Result<Vec<u8>> {
        fs::read(self.dir.join(rel))
    }

    /// Load every record in the index, in append order. An empty or
    /// absent index is an empty registry, not an error; a malformed
    /// line is a [`RegistryError::Parse`] naming its line number.
    pub fn load(&self) -> Result<Vec<RunRecord>, RegistryError> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let record = RunRecord::from_json(line)
                .map_err(|message| RegistryError::Parse { line: i + 1, message })?;
            records.push(record);
        }
        Ok(records)
    }
}

/// Convenience: load all records from a registry directory.
pub fn load_records(dir: impl Into<PathBuf>) -> Result<Vec<RunRecord>, RegistryError> {
    Registry::open(dir)?.load()
}
