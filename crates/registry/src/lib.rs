//! # spectral-registry — the cross-run telemetry registry
//!
//! Every other observability artifact in this workspace is *per-run*:
//! a manifest, an events file, a `BENCH_*.json`. Nothing connects runs
//! across invocations, so there is no perf trajectory and no way to ask
//! "did this commit make `online` slower?". This crate is that
//! connective tissue: an **append-only, on-disk run registry** that
//! experiment binaries (and the benches) append one record to at the
//! end of every run.
//!
//! ## On-disk layout
//!
//! ```text
//! <registry dir>/
//!   index.jsonl          # one RunRecord JSON object per line, append-only
//!   objects/
//!     3f/
//!       3fa9c1d2e4b57a86.json   # content-addressed artifacts (manifests)
//! ```
//!
//! * **`index.jsonl`** — the registry proper. Appends go through a
//!   single `O_APPEND` write of one newline-terminated line, so
//!   concurrent processes appending to a shared registry interleave
//!   whole records rather than corrupting each other. Records are never
//!   rewritten; consumers ([`Registry::load`]) see history in append
//!   order.
//! * **`objects/`** — a content-addressed store for bulky artifacts
//!   (full manifests with embedded metrics snapshots). The address is
//!   the FNV-1a 64 hash of the content, so identical artifacts
//!   deduplicate for free and records can reference them by relative
//!   path without coupling the index to their size.
//!
//! ## What a record carries
//!
//! A [`RunRecord`] distills one run for cross-run queries: the
//! collision-resistant `run_id` (see
//! [`spectral_telemetry::derive_run_id`]), a `code_version` label (the
//! `SPECTRAL_CODE_VERSION` environment variable — CI stamps commit ids
//! or `baseline`/`candidate` into it), what ran where (binary,
//! benchmark, machine, threads, seed), throughput (points processed,
//! run-phase seconds, the derived run rate), the final estimate, and
//! the convergence summaries distilled from the sampling-health stream
//! by the in-process tally ([`spectral_telemetry::take_run_summaries`]).
//!
//! `spectral-doctor trend` renders per-benchmark/per-machine time
//! series over these records, `doctor gate` turns a baseline set and a
//! candidate set into a statistical regression verdict, and
//! `doctor watch` tails a registry directory live.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod record;

pub use record::{RunRecord, RECORD_VERSION};

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Environment variable naming the registry directory; when set, the
/// experiment harness appends to it even without `--registry`.
pub const REGISTRY_ENV: &str = "SPECTRAL_REGISTRY";

/// Environment variable labeling the running code version
/// (`code_version()` falls back to `"dev"` when unset).
pub const CODE_VERSION_ENV: &str = "SPECTRAL_CODE_VERSION";

/// The code-version label for new records: `SPECTRAL_CODE_VERSION`, or
/// `"dev"` when unset/empty. CI stamps `baseline` / `candidate` /
/// commit ids into the variable to make run-sets selectable by
/// `doctor gate`.
pub fn code_version() -> String {
    match std::env::var(CODE_VERSION_ENV) {
        Ok(v) if !v.is_empty() => v,
        _ => "dev".to_owned(),
    }
}

/// Registry failure: an I/O problem or a corrupt index line.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem-level failure.
    Io(std::io::Error),
    /// `index.jsonl` line `line` (1-based) failed to parse.
    Parse {
        /// 1-based line number in `index.jsonl`.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry i/o error: {e}"),
            RegistryError::Parse { line, message } => {
                write!(f, "registry index line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// Handle to one on-disk registry directory (see the module docs for
/// the layout). Cheap to construct; every operation re-opens the files
/// it touches, so handles can be held across long runs and shared
/// between processes.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
}

impl Registry {
    /// Open (creating if necessary) the registry at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Registry> {
        let dir = dir.into();
        fs::create_dir_all(dir.join("objects"))?;
        Ok(Registry { dir })
    }

    /// Open the registry named by `SPECTRAL_REGISTRY`, if the variable
    /// is set and non-empty.
    pub fn from_env() -> std::io::Result<Option<Registry>> {
        match std::env::var_os(REGISTRY_ENV) {
            Some(dir) if !dir.is_empty() => Ok(Some(Registry::open(PathBuf::from(dir))?)),
            _ => Ok(None),
        }
    }

    /// The registry directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the append-only index.
    pub fn index_path(&self) -> PathBuf {
        self.dir.join("index.jsonl")
    }

    /// Append one record to the index. The write is a single
    /// `O_APPEND` line followed by an fsync (fault site
    /// `registry.append`, retried with backoff on transient errors), so
    /// concurrent appenders interleave whole records and a crash after
    /// return cannot lose the record. A crash *during* the append can
    /// at worst leave one torn trailing line, which
    /// [`Registry::load`] recovers from.
    ///
    /// # Example
    ///
    /// ```
    /// use spectral_registry::{Registry, RunRecord};
    ///
    /// let dir = std::env::temp_dir().join(format!("doc-registry-{}", std::process::id()));
    /// let registry = Registry::open(&dir)?;
    /// let mut record = RunRecord::new("run", "online", "gcc-like", "8-way", 4);
    /// record.points_processed = Some(400);
    /// registry.append(&record)?;
    ///
    /// let records = registry.load().expect("index parses");
    /// assert_eq!(records.len(), 1);
    /// assert_eq!(records[0].binary, "online");
    /// std::fs::remove_dir_all(&dir).ok();
    /// # Ok::<(), std::io::Error>(())
    /// ```
    pub fn append(&self, record: &RunRecord) -> std::io::Result<()> {
        let mut line = record.to_json_line();
        line.push('\n');
        let path = self.index_path();
        repair_torn_tail(&path)?;
        spectral_faultd::retry("registry.append", || {
            spectral_faultd::append_durable("registry.append", &path, line.as_bytes())
        })
    }

    /// Store `bytes` in the content-addressed object store and return
    /// its registry-relative path (`objects/3f/3fa9c1….<ext>`).
    /// Identical content always maps to the same path; re-storing it is
    /// a no-op.
    pub fn store_artifact(&self, ext: &str, bytes: &[u8]) -> std::io::Result<String> {
        let hash = spectral_telemetry::fnv1a64(bytes);
        let name = format!("{hash:016x}");
        let rel = format!("objects/{}/{name}.{ext}", &name[..2]);
        let path = self.dir.join(&rel);
        if !path.exists() {
            fs::create_dir_all(path.parent().expect("object path has a parent"))?;
            // Temp + fsync + rename (fault site `registry.artifact`) so
            // a concurrent reader never sees a half-written artifact at
            // its final address and a crash leaves no torn object.
            spectral_faultd::retry("registry.artifact", || {
                spectral_faultd::write_atomic("registry.artifact", &path, bytes)
            })?;
        }
        Ok(rel)
    }

    /// Read an artifact previously stored via
    /// [`store_artifact`](Registry::store_artifact) by its
    /// registry-relative path.
    pub fn read_artifact(&self, rel: &str) -> std::io::Result<Vec<u8>> {
        fs::read(self.dir.join(rel))
    }

    /// Load every record in the index, in append order. An empty or
    /// absent index is an empty registry, not an error; a malformed
    /// line is a [`RegistryError::Parse`] naming its line number.
    ///
    /// **Torn-tail recovery:** a process killed mid-append can leave
    /// one partial final line with no trailing newline. That line is
    /// silently dropped — it was never durably committed — so a crashed
    /// appender can never wedge every future `doctor` invocation.
    /// A malformed line *inside* the index (newline-terminated) is
    /// still a hard parse error: that is corruption, not a torn append.
    pub fn load(&self) -> Result<Vec<RunRecord>, RegistryError> {
        let text = match fs::read_to_string(self.index_path()) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e.into()),
        };
        let torn_tail = !text.is_empty() && !text.ends_with('\n');
        let last = text.lines().count();
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match RunRecord::from_json(line) {
                Ok(record) => records.push(record),
                Err(_) if torn_tail && i + 1 == last => break,
                Err(message) => {
                    return Err(RegistryError::Parse { line: i + 1, message });
                }
            }
        }
        Ok(records)
    }
}

/// Truncate an unterminated final line left by a crashed appender, so
/// the next append never merges a new record into the torn fragment.
/// A well-formed (newline-terminated) index is left untouched. Only a
/// crash can produce a torn tail, so there is no live appender racing
/// the truncation.
fn repair_torn_tail(path: &Path) -> std::io::Result<()> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => return Err(e),
    };
    if bytes.is_empty() || bytes.ends_with(b"\n") {
        return Ok(());
    }
    let keep = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let f = fs::OpenOptions::new().write(true).open(path)?;
    f.set_len(keep as u64)?;
    f.sync_all()
}

/// Convenience: load all records from a registry directory.
pub fn load_records(dir: impl Into<PathBuf>) -> Result<Vec<RunRecord>, RegistryError> {
    Registry::open(dir)?.load()
}
