//! Property-based tests: the codecs must round-trip arbitrary inputs.

use proptest::prelude::*;
use spectral_codec::{lzss, Container, DerReader, DerWriter};

proptest! {
    #[test]
    fn lzss_roundtrips_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&c).unwrap(), data);
    }

    #[test]
    fn lzss_roundtrips_repetitive_bytes(
        unit in proptest::collection::vec(any::<u8>(), 1..16),
        reps in 1usize..512,
    ) {
        let data: Vec<u8> = unit.iter().copied().cycle().take(unit.len() * reps).collect();
        let c = lzss::compress(&data);
        prop_assert_eq!(lzss::decompress(&c).unwrap(), data);
    }

    #[test]
    fn der_u64_roundtrips(v in any::<u64>()) {
        let mut w = DerWriter::new();
        w.u64(v);
        let data = w.finish();
        prop_assert_eq!(DerReader::new(&data).u64().unwrap(), v);
    }

    #[test]
    fn der_i64_roundtrips(v in any::<i64>()) {
        let mut w = DerWriter::new();
        w.i64(v);
        let data = w.finish();
        prop_assert_eq!(DerReader::new(&data).i64().unwrap(), v);
    }

    #[test]
    fn der_mixed_sequence_roundtrips(
        a in any::<u64>(),
        b in any::<i64>(),
        s in "[a-zA-Z0-9 ]{0,64}",
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
        flag in any::<bool>(),
    ) {
        let mut w = DerWriter::new();
        w.seq(|w| {
            w.u64(a);
            w.i64(b);
            w.utf8(&s);
            w.bytes(&bytes);
            w.bool(flag);
        });
        let data = w.finish();
        let mut r = DerReader::new(&data);
        let mut q = r.seq().unwrap();
        prop_assert_eq!(q.u64().unwrap(), a);
        prop_assert_eq!(q.i64().unwrap(), b);
        prop_assert_eq!(q.utf8().unwrap(), s.as_str());
        prop_assert_eq!(q.bytes().unwrap(), &bytes[..]);
        prop_assert_eq!(q.bool().unwrap(), flag);
        prop_assert!(q.is_empty());
    }

    #[test]
    fn der_u64_array_roundtrips(words in proptest::collection::vec(any::<u64>(), 0..512)) {
        let mut w = DerWriter::new();
        w.u64_array(&words);
        let data = w.finish();
        prop_assert_eq!(DerReader::new(&data).u64_array().unwrap(), words);
    }

    #[test]
    fn container_roundtrips(
        recs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..512), 0..16),
    ) {
        let bytes = Container::encode(recs.clone());
        prop_assert_eq!(Container::decode(&bytes).unwrap().records, recs);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = lzss::decompress(&data); // must return, never panic
    }

    #[test]
    fn compress_with_matches_compress(
        a in proptest::collection::vec(any::<u8>(), 0..4096),
        b in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        // One scratch reused across differently-sized inputs must be
        // byte-identical to fresh-allocation compression every time.
        let mut scratch = lzss::CompressScratch::new();
        prop_assert_eq!(lzss::compress_with(&mut scratch, &a), lzss::compress(&a));
        prop_assert_eq!(lzss::compress_with(&mut scratch, &b), lzss::compress(&b));
        prop_assert_eq!(lzss::compress_with(&mut scratch, &a), lzss::compress(&a));
    }

    #[test]
    fn decompress_into_roundtrips_with_reused_buffer(
        a in proptest::collection::vec(any::<u8>(), 0..4096),
        b in proptest::collection::vec(any::<u8>(), 0..4096),
    ) {
        // A dirty reused output buffer must not leak into the result.
        let mut out = Vec::new();
        lzss::decompress_into(&lzss::compress(&a), &mut out).unwrap();
        prop_assert_eq!(&out, &a);
        lzss::decompress_into(&lzss::compress(&b), &mut out).unwrap();
        prop_assert_eq!(&out, &b);
    }

    #[test]
    fn decompress_into_agrees_with_decompress_on_garbage(
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut out = Vec::new();
        match (lzss::decompress(&data), lzss::decompress_into(&data, &mut out)) {
            (Ok(v), Ok(())) => prop_assert_eq!(v, out),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn decompress_into_agrees_with_decompress_on_truncations(
        data in proptest::collection::vec(any::<u8>(), 1..2048),
        cut in any::<usize>(),
    ) {
        // Every proper prefix of a valid stream must produce the same
        // outcome (usually Truncated) from both decompressors.
        let c = lzss::compress(&data);
        let prefix = &c[..cut % c.len()];
        let mut out = Vec::new();
        match (lzss::decompress(prefix), lzss::decompress_into(prefix, &mut out)) {
            (Ok(v), Ok(())) => prop_assert_eq!(v, out),
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "divergent outcomes: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn der_reader_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut r = DerReader::new(&data);
        let _ = r.u64();
        let _ = r.bytes();
        let _ = r.seq();
        let _ = r.bool();
    }
}
