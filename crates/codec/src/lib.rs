//! # spectral-codec — live-point wire formats
//!
//! The paper stores live-points in ASN.1 DER with gzip compression
//! ("We encode live-points using ASN.1 DER format and gzip compression,
//! which incur minimal storage and processing time overhead", §3).
//! Neither an ASN.1 library nor a gzip binding is available in this
//! environment, so this crate implements both substrates from scratch:
//!
//! * [`DerWriter`] / [`DerReader`] — a subset of X.690 Distinguished
//!   Encoding Rules: `INTEGER`, `BOOLEAN`, `OCTET STRING`, `UTF8String`,
//!   and definite-length `SEQUENCE`, with canonical minimal lengths,
//! * [`lzss`] — an LZ77-family byte compressor standing in for gzip
//!   (documented substitution; ratios on tag/predictor state are in the
//!   same ~4–6:1 band the paper reports for gzip),
//! * [`crc32`] — IEEE CRC-32 integrity checks for container frames,
//! * [`Container`] — the shuffled single-stream live-point library file
//!   format recommended in §6.1 ("stored in a single compressed file to
//!   maximize I/O performance"),
//! * [`paged`] — library format v2: a footer-indexed paged container
//!   with O(1) positioned record reads and block-shared LZSS
//!   dictionaries ([`sniff_version`] dispatches between v1 and v2).
//!
//! ## Example: encode, compress, round-trip
//!
//! ```
//! use spectral_codec::{DerWriter, DerReader, lzss};
//!
//! let mut w = DerWriter::new();
//! w.seq(|w| {
//!     w.u64(1234);
//!     w.bytes(b"warm state");
//! });
//! let encoded = w.finish();
//! let packed = lzss::compress(&encoded);
//! let unpacked = lzss::decompress(&packed)?;
//! let mut r = DerReader::new(&unpacked);
//! let mut s = r.seq()?;
//! assert_eq!(s.u64()?, 1234);
//! assert_eq!(s.bytes()?, b"warm state");
//! # Ok::<(), spectral_codec::CodecError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod container;
pub mod crc32;
mod der;
mod error;
pub mod lzss;
pub mod paged;
pub mod varint;

pub use container::{
    frame_header, parse_v1_header, sniff_version, Container, ContainerReader, ContainerWriter,
    FRAME_HEADER_LEN, V1_HEADER_LEN,
};
pub use der::{DerReader, DerWriter};
pub use error::CodecError;
