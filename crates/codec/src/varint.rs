//! LEB128-style unsigned varints, used to delta-code tag arrays and
//! timestamps inside live-points before compression (this pre-coding is
//! what brings LZSS into the compression band the paper reports for
//! gzip on warm-state payloads).

use crate::error::CodecError;

/// Append `v` as a little-endian base-128 varint.
pub fn write_uvarint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Read a varint from `data` at `*pos`, advancing it.
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] at end of input and
/// [`CodecError::BadLength`] for varints longer than 10 bytes.
pub fn read_uvarint(data: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos).ok_or(CodecError::Truncated)?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError::BadLength);
        }
        v |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Encode a slice of `u64`s as varints.
pub fn encode_all(values: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(values.len() * 2);
    for &v in values {
        write_uvarint(&mut buf, v);
    }
    buf
}

/// Decode exactly `count` varints.
///
/// # Errors
///
/// Propagates [`read_uvarint`] errors, plus [`CodecError::BadLength`]
/// when trailing bytes remain.
pub fn decode_exact(data: &[u8], count: usize) -> Result<Vec<u64>, CodecError> {
    let mut pos = 0;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(read_uvarint(data, &mut pos)?);
    }
    if pos != data.len() {
        return Err(CodecError::BadLength);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_boundaries() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn small_values_one_byte() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn bulk_roundtrip() {
        let values: Vec<u64> = (0..1000).map(|i| i * i * 31).collect();
        let buf = encode_all(&values);
        assert_eq!(decode_exact(&buf, values.len()).unwrap(), values);
    }

    #[test]
    fn truncated_detected() {
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        let mut pos = 0;
        assert_eq!(
            read_uvarint(&buf[..buf.len() - 1], &mut pos).unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode_all(&[5, 6]);
        buf.push(0);
        assert_eq!(decode_exact(&buf, 2).unwrap_err(), CodecError::BadLength);
    }

    #[test]
    fn overlong_rejected() {
        let buf = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(read_uvarint(&buf, &mut pos).unwrap_err(), CodecError::BadLength);
    }
}
