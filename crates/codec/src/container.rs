//! The live-point library container format.
//!
//! A container is a single byte stream holding an ordered sequence of
//! compressed, CRC-protected records — the "single compressed file"
//! arrangement the paper recommends for shuffled live-point libraries
//! (§6.1). Layout:
//!
//! ```text
//! magic "SPLP" | version u16 LE | count u32 LE
//! then per record:
//!   compressed_len u32 LE | crc32(compressed) u32 LE | compressed bytes
//! ```
//!
//! Records are individually LZSS-compressed so they remain independently
//! loadable — the property that makes random-order and parallel
//! processing possible.

use crate::crc32;
use crate::error::CodecError;
use crate::lzss;

pub(crate) const MAGIC: &[u8; 4] = b"SPLP";
const VERSION: u16 = 1;

/// Length of the fixed v1 container header (magic + version + count).
pub const V1_HEADER_LEN: usize = 10;

/// Length of a per-record frame header (compressed length + CRC32).
pub const FRAME_HEADER_LEN: usize = 8;

/// Read the shared container magic and format version from a file
/// prefix without committing to a layout — the version-dispatch point
/// between the monolithic v1 container and the paged v2 container
/// ([`crate::paged`]).
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] when fewer than 6 bytes are given
/// and [`CodecError::BadContainer`] on a bad magic.
pub fn sniff_version(prefix: &[u8]) -> Result<u16, CodecError> {
    if prefix.len() < 6 {
        return Err(CodecError::Truncated);
    }
    if &prefix[..4] != MAGIC {
        return Err(CodecError::BadContainer);
    }
    Ok(u16::from_le_bytes([prefix[4], prefix[5]]))
}

/// Parse a full v1 header, returning the record count (which counts the
/// meta record, when the caller stored one).
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] on a short prefix,
/// [`CodecError::BadContainer`] on a bad magic, and
/// [`CodecError::UnsupportedVersion`] when the version is not 1.
pub fn parse_v1_header(prefix: &[u8]) -> Result<u32, CodecError> {
    if prefix.len() < V1_HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let version = sniff_version(prefix)?;
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    Ok(u32::from_le_bytes([prefix[6], prefix[7], prefix[8], prefix[9]]))
}

/// Parse one record frame header: `(compressed_len, crc32)`. Used by
/// metadata-only opens that walk frames by seeking instead of reading
/// record bodies.
pub fn frame_header(bytes: &[u8; FRAME_HEADER_LEN]) -> (u32, u32) {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    let crc = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    (len, crc)
}

/// Build a container in memory, one record at a time.
///
/// Frames stream straight into the output buffer as they are pushed —
/// no per-record copies are retained; [`finish`](Self::finish) only
/// patches the record count into the header.
#[derive(Debug, Clone)]
pub struct ContainerWriter {
    out: Vec<u8>,
    count: u32,
}

impl Default for ContainerWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl ContainerWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // count, patched in finish()
        ContainerWriter { out, count: 0 }
    }

    /// Append one record (uncompressed payload; compression happens
    /// here).
    pub fn push(&mut self, payload: &[u8]) {
        let compressed = lzss::compress(payload);
        self.push_compressed(&compressed);
    }

    /// Append a record that is already LZSS-compressed (as produced by
    /// [`lzss::compress`]) — avoids a decompress/recompress round trip
    /// when archiving records held compressed in memory. The bytes are
    /// framed directly into the output stream; the caller keeps
    /// ownership of its buffer.
    pub fn push_compressed(&mut self, compressed: &[u8]) {
        self.out.extend_from_slice(&(compressed.len() as u32).to_le_bytes());
        self.out.extend_from_slice(&crc32::checksum(compressed).to_le_bytes());
        self.out.extend_from_slice(compressed);
        self.count += 1;
    }

    /// Number of records appended.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether no records have been appended.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Serialize the container.
    pub fn finish(self) -> Vec<u8> {
        let mut out = self.out;
        out[6..10].copy_from_slice(&self.count.to_le_bytes());
        out
    }
}

/// Decode a container, iterating records in stored order.
#[derive(Debug, Clone)]
pub struct ContainerReader<'a> {
    data: &'a [u8],
    pos: usize,
    remaining: u32,
    index: usize,
}

impl<'a> ContainerReader<'a> {
    /// Open a container over `data`.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError::BadContainer`] on a bad magic or version and
    /// [`CodecError::Truncated`] on short input.
    pub fn new(data: &'a [u8]) -> Result<Self, CodecError> {
        if data.len() < 10 {
            return Err(CodecError::Truncated);
        }
        if &data[..4] != MAGIC {
            return Err(CodecError::BadContainer);
        }
        let version = u16::from_le_bytes([data[4], data[5]]);
        if version != VERSION {
            return Err(CodecError::BadContainer);
        }
        let count = u32::from_le_bytes([data[6], data[7], data[8], data[9]]);
        Ok(ContainerReader { data, pos: 10, remaining: count, index: 0 })
    }

    /// Number of records left to read.
    pub fn remaining(&self) -> u32 {
        self.remaining
    }

    /// Read the next record (decompressed), or `None` at the end.
    ///
    /// # Errors
    ///
    /// CRC mismatches, truncation, and decompression faults are
    /// reported per frame.
    pub fn next_record(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.data.len() - self.pos < 8 {
            return Err(CodecError::Truncated);
        }
        let len = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().expect("4 bytes"))
            as usize;
        let crc =
            u32::from_le_bytes(self.data[self.pos + 4..self.pos + 8].try_into().expect("4 bytes"));
        self.pos += 8;
        if self.data.len() - self.pos < len {
            return Err(CodecError::Truncated);
        }
        let body = &self.data[self.pos..self.pos + len];
        if crc32::checksum(body) != crc {
            return Err(CodecError::CrcMismatch { frame: self.index });
        }
        self.pos += len;
        self.remaining -= 1;
        self.index += 1;
        lzss::decompress(body).map(Some)
    }

    /// Read the next record *without* decompressing (CRC still checked),
    /// or `None` at the end.
    ///
    /// # Errors
    ///
    /// CRC mismatches and truncation are reported per frame.
    pub fn next_record_compressed(&mut self) -> Result<Option<Vec<u8>>, CodecError> {
        if self.remaining == 0 {
            return Ok(None);
        }
        if self.data.len() - self.pos < 8 {
            return Err(CodecError::Truncated);
        }
        let len = u32::from_le_bytes(self.data[self.pos..self.pos + 4].try_into().expect("4 bytes"))
            as usize;
        let crc =
            u32::from_le_bytes(self.data[self.pos + 4..self.pos + 8].try_into().expect("4 bytes"));
        self.pos += 8;
        if self.data.len() - self.pos < len {
            return Err(CodecError::Truncated);
        }
        let body = &self.data[self.pos..self.pos + len];
        if crc32::checksum(body) != crc {
            return Err(CodecError::CrcMismatch { frame: self.index });
        }
        self.pos += len;
        self.remaining -= 1;
        self.index += 1;
        Ok(Some(body.to_vec()))
    }
}

/// Convenience façade: build or parse a whole container at once.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Container {
    /// The decompressed records, in stored order.
    pub records: Vec<Vec<u8>>,
}

impl Container {
    /// Serialize all records into container bytes.
    pub fn encode(records: impl IntoIterator<Item = Vec<u8>>) -> Vec<u8> {
        let mut w = ContainerWriter::new();
        for r in records {
            w.push(&r);
        }
        w.finish()
    }

    /// Parse container bytes into records.
    ///
    /// # Errors
    ///
    /// Propagates any frame-level error from [`ContainerReader`].
    pub fn decode(data: &[u8]) -> Result<Self, CodecError> {
        let mut reader = ContainerReader::new(data)?;
        let mut records = Vec::new();
        while let Some(rec) = reader.next_record()? {
            records.push(rec);
        }
        Ok(Container { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_multiple_records() {
        let recs: Vec<Vec<u8>> = (0..10)
            .map(|i| format!("live-point number {i} with warm state").into_bytes())
            .collect();
        let bytes = Container::encode(recs.clone());
        let decoded = Container::decode(&bytes).unwrap();
        assert_eq!(decoded.records, recs);
    }

    #[test]
    fn empty_container() {
        let bytes = Container::encode(Vec::<Vec<u8>>::new());
        assert_eq!(Container::decode(&bytes).unwrap().records.len(), 0);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut bytes = Container::encode(vec![b"x".to_vec()]);
        bytes[0] = b'X';
        assert_eq!(Container::decode(&bytes).unwrap_err(), CodecError::BadContainer);
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = Container::encode(vec![b"x".to_vec()]);
        bytes[4] = 99;
        assert_eq!(Container::decode(&bytes).unwrap_err(), CodecError::BadContainer);
    }

    #[test]
    fn detects_payload_corruption() {
        let bytes = Container::encode(vec![vec![7u8; 200]]);
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0xFF;
        assert!(matches!(Container::decode(&corrupt), Err(CodecError::CrcMismatch { frame: 0 })));
    }

    #[test]
    fn truncation_detected() {
        let bytes = Container::encode(vec![vec![7u8; 200]]);
        assert!(matches!(Container::decode(&bytes[..bytes.len() - 4]), Err(CodecError::Truncated)));
    }

    #[test]
    fn push_compressed_streams_identical_frames() {
        let payload = b"records stream straight into the output buffer".to_vec();
        let mut a = ContainerWriter::new();
        a.push(&payload);
        a.push(&payload);
        let mut b = ContainerWriter::new();
        assert!(b.is_empty());
        let compressed = lzss::compress(&payload);
        b.push_compressed(&compressed);
        b.push_compressed(&compressed);
        assert_eq!(b.len(), 2);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn streaming_reader_counts_down() {
        let bytes = Container::encode(vec![b"a".to_vec(), b"b".to_vec()]);
        let mut r = ContainerReader::new(&bytes).unwrap();
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.next_record().unwrap().unwrap(), b"a");
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.next_record().unwrap().unwrap(), b"b");
        assert_eq!(r.next_record().unwrap(), None);
    }
}
