//! Paged random-access container — library format v2.
//!
//! The monolithic v1 [`Container`](crate::Container) must be parsed
//! front to back before the first record is usable. Format v2 keeps the
//! record bodies back to back with **no interleaved framing** and moves
//! all structure into a footer index at the end of the file, so an open
//! reads only the header and footer, and fetching record `i` is one
//! positioned read:
//!
//! ```text
//! magic "SPLP" | version u16 = 2 LE | meta_len u32 LE | meta_crc u32 LE
//! meta bytes                      (plain-LZSS-compressed DER metadata)
//! body: dictionary frames and record frames, raw bytes, back to back
//! footer:
//!   count u32 LE | block_count u32 LE
//!   per block:  dict_offset u64 | dict_len u32 | dict_crc u32
//!   per record: offset u64 | len u32 | crc u32 | block u32
//! trailer (fixed 24 bytes at EOF):
//!   footer_offset u64 | footer_len u32 | footer_crc u32
//!   | content_hash u32 | magic "SPL2"
//! ```
//!
//! All offsets are absolute file offsets. Records are grouped into
//! *blocks*; a block may carry a shared LZSS dictionary (itself
//! plain-LZSS-compressed) that primes the window for every record in the
//! block ([`lzss::compress_with_dict`]). A block with `dict_len == 0`
//! has no dictionary and its records are plain [`lzss::compress`]
//! streams — byte-identical to their v1 framing, which makes
//! v1 ↔ v2-without-dictionaries conversion a pure re-framing (no
//! decompression) and lets `merge` operate at the index level.
//!
//! The writer is purely streaming (`io::Write`, no seeks): shards can
//! append blocks as they are produced and a stitch pass only rewrites
//! the footer. `content_hash` is the CRC32 of the record bodies in
//! stored order — for dictionary-less files this equals the v1 library
//! content hash.

use std::io::{self, Write};

use crate::container::MAGIC;
use crate::crc32;
use crate::error::CodecError;
use crate::lzss;

/// Format version stored in the shared header.
pub const V2_VERSION: u16 = 2;

/// Length of the fixed v2 header (magic + version + meta_len + meta_crc).
pub const V2_HEADER_LEN: usize = 14;

/// Length of the fixed trailer at EOF.
pub const V2_TRAILER_LEN: usize = 24;

/// Magic closing the trailer (distinct from the header magic so a
/// truncated file can never alias a complete one).
const TRAILER_MAGIC: &[u8; 4] = b"SPL2";

/// Sentinel count limit: a footer can never index more entries than it
/// has bytes for; enforced structurally in [`parse_v2_footer`].
const FOOTER_FIXED_LEN: usize = 8;
const BLOCK_ENTRY_LEN: usize = 16;
const RECORD_ENTRY_LEN: usize = 20;

/// Footer entry for one dictionary block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEntry {
    /// Absolute file offset of the compressed dictionary (meaningless
    /// when `dict_len == 0`).
    pub dict_offset: u64,
    /// Compressed dictionary length in bytes; 0 = no dictionary.
    pub dict_len: u32,
    /// CRC32 of the compressed dictionary bytes.
    pub dict_crc: u32,
}

/// Footer entry for one record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordEntry {
    /// Absolute file offset of the record body.
    pub offset: u64,
    /// Record body length in bytes.
    pub len: u32,
    /// CRC32 of the record body.
    pub crc: u32,
    /// Index into the block table (always valid after parsing).
    pub block: u32,
}

/// Parsed v2 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Header {
    /// Compressed metadata length (bytes immediately after the header).
    pub meta_len: u32,
    /// CRC32 of the compressed metadata bytes.
    pub meta_crc: u32,
}

/// Parsed v2 trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Trailer {
    /// Absolute file offset of the footer.
    pub footer_offset: u64,
    /// Footer length in bytes.
    pub footer_len: u32,
    /// CRC32 of the footer bytes.
    pub footer_crc: u32,
    /// CRC32 of the record bodies in stored order.
    pub content_hash: u32,
}

/// Parse the fixed v2 header from a file prefix.
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input, [`CodecError::BadContainer`]
/// on a bad magic, [`CodecError::UnsupportedVersion`] when the version
/// is not 2.
pub fn parse_v2_header(prefix: &[u8]) -> Result<V2Header, CodecError> {
    if prefix.len() < V2_HEADER_LEN {
        return Err(CodecError::Truncated);
    }
    let version = crate::container::sniff_version(prefix)?;
    if version != V2_VERSION {
        return Err(CodecError::UnsupportedVersion { found: version });
    }
    let meta_len = u32::from_le_bytes(prefix[6..10].try_into().expect("4 bytes"));
    let meta_crc = u32::from_le_bytes(prefix[10..14].try_into().expect("4 bytes"));
    Ok(V2Header { meta_len, meta_crc })
}

/// CRC-check and decompress the metadata bytes that follow the header.
///
/// # Errors
///
/// [`CodecError::CrcMismatch`] (frame 0 = the metadata frame) on
/// corruption, plus any LZSS decode fault.
pub fn decode_v2_meta(header: &V2Header, meta_bytes: &[u8]) -> Result<Vec<u8>, CodecError> {
    if meta_bytes.len() != header.meta_len as usize {
        return Err(CodecError::Truncated);
    }
    if crc32::checksum(meta_bytes) != header.meta_crc {
        return Err(CodecError::CrcMismatch { frame: 0 });
    }
    lzss::decompress(meta_bytes)
}

/// Parse the fixed trailer from the last [`V2_TRAILER_LEN`] bytes of a
/// `file_len`-byte file, validating that the footer it points at lies
/// entirely inside the file and directly precedes the trailer.
///
/// # Errors
///
/// [`CodecError::Truncated`] on short input, [`CodecError::BadFooter`]
/// on a bad trailer magic or inconsistent geometry.
pub fn parse_v2_trailer(tail: &[u8], file_len: u64) -> Result<V2Trailer, CodecError> {
    if tail.len() < V2_TRAILER_LEN || file_len < (V2_HEADER_LEN + V2_TRAILER_LEN) as u64 {
        return Err(CodecError::Truncated);
    }
    let t = &tail[tail.len() - V2_TRAILER_LEN..];
    if &t[20..24] != TRAILER_MAGIC {
        return Err(CodecError::BadFooter);
    }
    let footer_offset = u64::from_le_bytes(t[0..8].try_into().expect("8 bytes"));
    let footer_len = u32::from_le_bytes(t[8..12].try_into().expect("4 bytes"));
    let footer_crc = u32::from_le_bytes(t[12..16].try_into().expect("4 bytes"));
    let content_hash = u32::from_le_bytes(t[16..20].try_into().expect("4 bytes"));
    let end = footer_offset
        .checked_add(footer_len as u64)
        .and_then(|e| e.checked_add(V2_TRAILER_LEN as u64))
        .ok_or(CodecError::BadFooter)?;
    if end != file_len || footer_offset < V2_HEADER_LEN as u64 {
        return Err(CodecError::BadFooter);
    }
    Ok(V2Trailer { footer_offset, footer_len, footer_crc, content_hash })
}

/// Parse and validate the footer bytes against `trailer`. `body_start`
/// is the first offset a dictionary or record may legally occupy (end
/// of the metadata frame); every entry is bounds-checked into
/// `[body_start, trailer.footer_offset)` and every record's block index
/// is checked against the block table, so downstream positioned reads
/// can trust the index.
///
/// # Errors
///
/// [`CodecError::BadFooter`] on length/geometry violations,
/// [`CodecError::CrcMismatch`] (frame `usize::MAX` denotes the footer
/// itself) when the footer bytes fail their CRC.
pub fn parse_v2_footer(
    footer: &[u8],
    trailer: &V2Trailer,
    body_start: u64,
) -> Result<(Vec<BlockEntry>, Vec<RecordEntry>), CodecError> {
    if footer.len() != trailer.footer_len as usize || footer.len() < FOOTER_FIXED_LEN {
        return Err(CodecError::BadFooter);
    }
    if crc32::checksum(footer) != trailer.footer_crc {
        return Err(CodecError::CrcMismatch { frame: usize::MAX });
    }
    let count = u32::from_le_bytes(footer[0..4].try_into().expect("4 bytes")) as usize;
    let block_count = u32::from_le_bytes(footer[4..8].try_into().expect("4 bytes")) as usize;
    let expect_len = FOOTER_FIXED_LEN
        .checked_add(block_count.checked_mul(BLOCK_ENTRY_LEN).ok_or(CodecError::BadFooter)?)
        .and_then(|l| l.checked_add(count.checked_mul(RECORD_ENTRY_LEN)?))
        .ok_or(CodecError::BadFooter)?;
    if footer.len() != expect_len {
        return Err(CodecError::BadFooter);
    }
    let in_body = |offset: u64, len: u32| -> bool {
        offset >= body_start
            && offset.checked_add(len as u64).is_some_and(|e| e <= trailer.footer_offset)
    };
    let mut pos = FOOTER_FIXED_LEN;
    let mut blocks = Vec::with_capacity(block_count);
    for _ in 0..block_count {
        let dict_offset = u64::from_le_bytes(footer[pos..pos + 8].try_into().expect("8 bytes"));
        let dict_len = u32::from_le_bytes(footer[pos + 8..pos + 12].try_into().expect("4 bytes"));
        let dict_crc = u32::from_le_bytes(footer[pos + 12..pos + 16].try_into().expect("4 bytes"));
        pos += BLOCK_ENTRY_LEN;
        if dict_len > 0 && !in_body(dict_offset, dict_len) {
            return Err(CodecError::BadFooter);
        }
        blocks.push(BlockEntry { dict_offset, dict_len, dict_crc });
    }
    let mut records = Vec::with_capacity(count);
    for _ in 0..count {
        let offset = u64::from_le_bytes(footer[pos..pos + 8].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(footer[pos + 8..pos + 12].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(footer[pos + 12..pos + 16].try_into().expect("4 bytes"));
        let block = u32::from_le_bytes(footer[pos + 16..pos + 20].try_into().expect("4 bytes"));
        pos += RECORD_ENTRY_LEN;
        if !in_body(offset, len) || block as usize >= block_count {
            return Err(CodecError::BadFooter);
        }
        records.push(RecordEntry { offset, len, crc, block });
    }
    Ok((blocks, records))
}

/// Totals reported by [`PagedWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct V2Summary {
    /// Records written.
    pub count: u32,
    /// CRC32 of the record bodies in stored order.
    pub content_hash: u32,
    /// Bytes of record bodies (excluding dictionaries, meta, footer).
    pub record_bytes: u64,
    /// Total file length.
    pub file_bytes: u64,
}

/// Streaming v2 writer: header and metadata up front, then blocks and
/// records in arrival order, footer + trailer on
/// [`finish`](Self::finish). Never seeks, so shards can stream blocks
/// straight to disk and a merge stitch pass can raw-copy bodies from
/// other containers.
#[derive(Debug)]
pub struct PagedWriter<W: Write> {
    w: W,
    offset: u64,
    blocks: Vec<BlockEntry>,
    records: Vec<RecordEntry>,
    record_bytes: u64,
    hash: crc32::Hasher,
    open_block: bool,
}

impl<W: Write> PagedWriter<W> {
    /// Start a container: compresses `meta_der` (the library metadata
    /// payload, identical to the v1 meta record) and writes the header
    /// and metadata frame.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn new(mut w: W, meta_der: &[u8]) -> io::Result<Self> {
        let meta = lzss::compress(meta_der);
        w.write_all(MAGIC)?;
        w.write_all(&V2_VERSION.to_le_bytes())?;
        w.write_all(&(meta.len() as u32).to_le_bytes())?;
        w.write_all(&crc32::checksum(&meta).to_le_bytes())?;
        w.write_all(&meta)?;
        Ok(PagedWriter {
            w,
            offset: (V2_HEADER_LEN + meta.len()) as u64,
            blocks: Vec::new(),
            records: Vec::new(),
            record_bytes: 0,
            hash: crc32::Hasher::new(),
            open_block: false,
        })
    }

    /// Open a new block primed by `dict_compressed` (a plain
    /// [`lzss::compress`] stream; pass an empty slice for a
    /// dictionary-less block). Subsequent records belong to this block
    /// until the next call.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn begin_block(&mut self, dict_compressed: &[u8]) -> io::Result<()> {
        let entry = BlockEntry {
            dict_offset: self.offset,
            dict_len: dict_compressed.len() as u32,
            dict_crc: crc32::checksum(dict_compressed),
        };
        if !dict_compressed.is_empty() {
            self.w.write_all(dict_compressed)?;
            self.offset += dict_compressed.len() as u64;
        }
        self.blocks.push(entry);
        self.open_block = true;
        Ok(())
    }

    /// Append one record body (compressed bytes; plain or
    /// dictionary-primed — the format does not care, the reader picks
    /// the decoder from the owning block's `dict_len`). Records pushed
    /// before any [`begin_block`](Self::begin_block) land in an implicit
    /// dictionary-less block.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn push_record(&mut self, compressed: &[u8]) -> io::Result<()> {
        if !self.open_block {
            self.begin_block(&[])?;
        }
        let block = (self.blocks.len() - 1) as u32;
        self.push_record_in_block(compressed, block)
    }

    /// Append one record body tied to an explicit, already-written block.
    /// This is the merge primitive: dictionaries from every input are
    /// written up front (one [`begin_block`](Self::begin_block) each) and
    /// record bodies then arrive in shuffled order, each pointing back at
    /// its original dictionary.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidInput`] when `block` does not name a
    /// written block; otherwise propagates writer I/O errors.
    pub fn push_record_in_block(&mut self, compressed: &[u8], block: u32) -> io::Result<()> {
        if block as usize >= self.blocks.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("block {block} not yet written ({} blocks)", self.blocks.len()),
            ));
        }
        self.w.write_all(compressed)?;
        self.hash.update(compressed);
        self.records.push(RecordEntry {
            offset: self.offset,
            len: compressed.len() as u32,
            crc: crc32::checksum(compressed),
            block,
        });
        self.offset += compressed.len() as u64;
        self.record_bytes += compressed.len() as u64;
        Ok(())
    }

    /// Records written so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records have been written.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Write the footer and trailer and flush.
    ///
    /// # Errors
    ///
    /// Propagates writer I/O errors.
    pub fn finish(mut self) -> io::Result<V2Summary> {
        let footer_offset = self.offset;
        let mut footer = Vec::with_capacity(
            FOOTER_FIXED_LEN
                + self.blocks.len() * BLOCK_ENTRY_LEN
                + self.records.len() * RECORD_ENTRY_LEN,
        );
        footer.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        footer.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for b in &self.blocks {
            footer.extend_from_slice(&b.dict_offset.to_le_bytes());
            footer.extend_from_slice(&b.dict_len.to_le_bytes());
            footer.extend_from_slice(&b.dict_crc.to_le_bytes());
        }
        for r in &self.records {
            footer.extend_from_slice(&r.offset.to_le_bytes());
            footer.extend_from_slice(&r.len.to_le_bytes());
            footer.extend_from_slice(&r.crc.to_le_bytes());
            footer.extend_from_slice(&r.block.to_le_bytes());
        }
        let content_hash = self.hash.finalize();
        self.w.write_all(&footer)?;
        self.w.write_all(&footer_offset.to_le_bytes())?;
        self.w.write_all(&(footer.len() as u32).to_le_bytes())?;
        self.w.write_all(&crc32::checksum(&footer).to_le_bytes())?;
        self.w.write_all(&content_hash.to_le_bytes())?;
        self.w.write_all(TRAILER_MAGIC)?;
        self.w.flush()?;
        Ok(V2Summary {
            count: self.records.len() as u32,
            content_hash,
            record_bytes: self.record_bytes,
            file_bytes: footer_offset + (footer.len() + V2_TRAILER_LEN) as u64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(records: &[&[u8]], dict: Option<&[u8]>) -> Vec<u8> {
        let mut out = Vec::new();
        let mut w = PagedWriter::new(&mut out, b"meta-payload").unwrap();
        if let Some(d) = dict {
            w.begin_block(&lzss::compress(d)).unwrap();
        }
        for r in records {
            w.push_record(&lzss::compress(r)).unwrap();
        }
        let summary = w.finish().unwrap();
        assert_eq!(summary.count as usize, records.len());
        assert_eq!(summary.file_bytes as usize, out.len());
        out
    }

    type Opened = (Vec<u8>, Vec<BlockEntry>, Vec<RecordEntry>);

    fn open(bytes: &[u8]) -> Result<Opened, CodecError> {
        let header = parse_v2_header(bytes)?;
        let meta_end = V2_HEADER_LEN + header.meta_len as usize;
        if bytes.len() < meta_end {
            return Err(CodecError::Truncated);
        }
        let meta = decode_v2_meta(&header, &bytes[V2_HEADER_LEN..meta_end])?;
        let trailer = parse_v2_trailer(bytes, bytes.len() as u64)?;
        let footer = &bytes[trailer.footer_offset as usize
            ..(trailer.footer_offset + trailer.footer_len as u64) as usize];
        let (blocks, records) = parse_v2_footer(footer, &trailer, meta_end as u64)?;
        Ok((meta, blocks, records))
    }

    #[test]
    fn roundtrip_without_dict() {
        let recs: Vec<Vec<u8>> =
            (0..5).map(|i| format!("record number {i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = recs.iter().map(Vec::as_slice).collect();
        let bytes = build(&refs, None);
        let (meta, blocks, records) = open(&bytes).unwrap();
        assert_eq!(meta, b"meta-payload");
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].dict_len, 0);
        assert_eq!(records.len(), 5);
        for (r, want) in records.iter().zip(&recs) {
            let body = &bytes[r.offset as usize..(r.offset + r.len as u64) as usize];
            assert_eq!(crc32::checksum(body), r.crc);
            assert_eq!(lzss::decompress(body).unwrap(), *want);
        }
    }

    #[test]
    fn roundtrip_with_dict_block() {
        let dict = b"shared prefix shared prefix shared prefix".to_vec();
        let mut out = Vec::new();
        let mut w = PagedWriter::new(&mut out, b"m").unwrap();
        w.begin_block(&lzss::compress(&dict)).unwrap();
        let mut scratch = lzss::CompressScratch::new();
        let payload = b"shared prefix shared prefix payload tail";
        w.push_record(&lzss::compress_with_dict(&mut scratch, &dict, payload)).unwrap();
        w.finish().unwrap();
        let (_, blocks, records) = open(&out).unwrap();
        assert_eq!(blocks.len(), 1);
        assert!(blocks[0].dict_len > 0);
        let dict_bytes = &out[blocks[0].dict_offset as usize
            ..(blocks[0].dict_offset + blocks[0].dict_len as u64) as usize];
        assert_eq!(crc32::checksum(dict_bytes), blocks[0].dict_crc);
        let dict_back = lzss::decompress(dict_bytes).unwrap();
        assert_eq!(dict_back, dict);
        let r = &records[0];
        let body = &out[r.offset as usize..(r.offset + r.len as u64) as usize];
        let mut decoded = Vec::new();
        lzss::decompress_into_with_dict(&dict_back, body, &mut decoded).unwrap();
        assert_eq!(decoded, payload);
    }

    #[test]
    fn content_hash_covers_record_bodies_in_order() {
        let recs: Vec<Vec<u8>> = (0..3).map(|i| vec![i as u8; 64]).collect();
        let refs: Vec<&[u8]> = recs.iter().map(Vec::as_slice).collect();
        let bytes = build(&refs, None);
        let trailer = parse_v2_trailer(&bytes, bytes.len() as u64).unwrap();
        let mut h = crc32::Hasher::new();
        for r in &recs {
            h.update(&lzss::compress(r));
        }
        assert_eq!(trailer.content_hash, h.finalize());
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = build(&[b"some record data"], None);
        for cut in [0, 3, V2_HEADER_LEN - 1, bytes.len() - 1, bytes.len() - V2_TRAILER_LEN] {
            let err = open(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    CodecError::Truncated | CodecError::BadFooter | CodecError::BadContainer
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn footer_corruption_is_typed() {
        let bytes = build(&[b"some record data"], None);
        let trailer = parse_v2_trailer(&bytes, bytes.len() as u64).unwrap();
        // Flip a footer byte: CRC must catch it.
        let mut corrupt = bytes.clone();
        corrupt[trailer.footer_offset as usize] ^= 0xFF;
        assert!(matches!(open(&corrupt), Err(CodecError::CrcMismatch { .. })));
        // Flip a trailer geometry byte: structural check must catch it.
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() - V2_TRAILER_LEN] ^= 0xFF;
        assert!(matches!(
            open(&corrupt),
            Err(CodecError::BadFooter | CodecError::Truncated | CodecError::CrcMismatch { .. })
        ));
        // Wrong trailer magic.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] = b'X';
        assert_eq!(open(&corrupt).unwrap_err(), CodecError::BadFooter);
    }

    #[test]
    fn v1_bytes_are_dispatched_away() {
        let v1 = crate::Container::encode(vec![b"x".to_vec()]);
        assert_eq!(crate::container::sniff_version(&v1).unwrap(), 1);
        assert!(matches!(
            parse_v2_header(&v1),
            Err(CodecError::UnsupportedVersion { found: 1 } | CodecError::Truncated)
        ));
    }

    #[test]
    fn empty_container_roundtrips() {
        let bytes = build(&[], None);
        let (meta, blocks, records) = open(&bytes).unwrap();
        assert_eq!(meta, b"meta-payload");
        assert!(blocks.is_empty());
        assert!(records.is_empty());
    }
}
