//! Error type for encoding, decoding, and container parsing.

use std::error::Error;
use std::fmt;

/// Errors from DER decoding, LZSS decompression, or container parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before a complete element was read.
    Truncated,
    /// An element carried an unexpected ASN.1 tag.
    UnexpectedTag {
        /// Tag found in the input.
        found: u8,
        /// Tag the caller asked for.
        expected: u8,
    },
    /// A length field was non-canonical or exceeded the input.
    BadLength,
    /// An `INTEGER` did not fit the requested Rust type.
    IntegerOverflow,
    /// A `UTF8String` held invalid UTF-8.
    BadUtf8,
    /// A compressed stream referenced data before the window start.
    BadBackReference,
    /// A container frame failed its CRC check.
    CrcMismatch {
        /// Zero-based frame index.
        frame: usize,
    },
    /// The container magic/version was not recognized.
    BadContainer,
    /// The container carried a version this build cannot read.
    UnsupportedVersion {
        /// Version found in the header.
        found: u16,
    },
    /// A paged container's footer or trailer was structurally invalid
    /// (bad trailer magic, out-of-bounds offsets, inconsistent counts,
    /// or a footer CRC mismatch).
    BadFooter,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "input ended before a complete element"),
            CodecError::UnexpectedTag { found, expected } => {
                write!(f, "unexpected DER tag {found:#04x} (expected {expected:#04x})")
            }
            CodecError::BadLength => write!(f, "non-canonical or out-of-range DER length"),
            CodecError::IntegerOverflow => write!(f, "integer does not fit the requested type"),
            CodecError::BadUtf8 => write!(f, "utf8string held invalid utf-8"),
            CodecError::BadBackReference => {
                write!(f, "compressed stream references data before window start")
            }
            CodecError::CrcMismatch { frame } => {
                write!(f, "container frame {frame} failed its crc check")
            }
            CodecError::BadContainer => write!(f, "unrecognized container magic or version"),
            CodecError::UnsupportedVersion { found } => {
                write!(f, "unsupported container version {found}")
            }
            CodecError::BadFooter => {
                write!(f, "paged container footer/trailer is structurally invalid")
            }
        }
    }
}

impl Error for CodecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_display() {
        let variants = [
            CodecError::Truncated,
            CodecError::UnexpectedTag { found: 1, expected: 2 },
            CodecError::BadLength,
            CodecError::IntegerOverflow,
            CodecError::BadUtf8,
            CodecError::BadBackReference,
            CodecError::CrcMismatch { frame: 3 },
            CodecError::BadContainer,
            CodecError::UnsupportedVersion { found: 9 },
            CodecError::BadFooter,
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
