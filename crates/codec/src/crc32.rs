//! IEEE CRC-32 (the gzip/zlib polynomial), table-driven.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// Lazily-built lookup table (const-evaluated at compile time).
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Compute the CRC-32 of `data`.
pub fn checksum(data: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// An incremental CRC-32 hasher for streamed frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hasher {
    state: u32,
}

impl Default for Hasher {
    fn default() -> Self {
        Self::new()
    }
}

impl Hasher {
    /// Start a fresh checksum.
    pub fn new() -> Self {
        Hasher { state: !0 }
    }

    /// Feed bytes.
    pub fn update(&mut self, data: &[u8]) {
        for &b in data {
            self.state = TABLE[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// Finish, returning the checksum.
    pub fn finalize(self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vector: "123456789" → 0xCBF43926.
        assert_eq!(checksum(b"123456789"), 0xCBF4_3926);
        assert_eq!(checksum(b""), 0);
        assert_eq!(checksum(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut h = Hasher::new();
        h.update(&data[..10]);
        h.update(&data[10..]);
        assert_eq!(h.finalize(), checksum(data));
    }

    #[test]
    fn detects_corruption() {
        let mut data = vec![7u8; 100];
        let ok = checksum(&data);
        data[50] ^= 1;
        assert_ne!(checksum(&data), ok);
    }
}
