//! A subset of X.690 Distinguished Encoding Rules (DER).
//!
//! Supported universal types: `BOOLEAN` (0x01), `INTEGER` (0x02),
//! `OCTET STRING` (0x04), `UTF8String` (0x0C), and constructed
//! `SEQUENCE` (0x30). All lengths are definite and minimally encoded,
//! and integers are minimally encoded two's complement, as DER requires.

use crate::error::CodecError;

const TAG_BOOLEAN: u8 = 0x01;
const TAG_INTEGER: u8 = 0x02;
const TAG_OCTET_STRING: u8 = 0x04;
const TAG_UTF8_STRING: u8 = 0x0C;
const TAG_SEQUENCE: u8 = 0x30;

/// Append a DER definite length.
fn write_len(buf: &mut Vec<u8>, len: usize) {
    if len < 0x80 {
        buf.push(len as u8);
    } else {
        let bytes = len.to_be_bytes();
        let skip = bytes.iter().take_while(|&&b| b == 0).count();
        let sig = &bytes[skip..];
        buf.push(0x80 | sig.len() as u8);
        buf.extend_from_slice(sig);
    }
}

/// Minimal two's-complement big-endian encoding of `v`.
fn int_bytes(v: i128) -> Vec<u8> {
    let raw = v.to_be_bytes();
    let mut i = 0;
    // Strip redundant leading bytes while preserving the sign bit.
    while i + 1 < raw.len() {
        let cur = raw[i];
        let next_msb = raw[i + 1] & 0x80;
        if (cur == 0x00 && next_msb == 0) || (cur == 0xFF && next_msb != 0) {
            i += 1;
        } else {
            break;
        }
    }
    raw[i..].to_vec()
}

/// Streaming DER encoder.
///
/// Values are appended in order; nested [`seq`](Self::seq) closures build
/// constructed `SEQUENCE`s with correct definite lengths.
#[derive(Debug, Clone, Default)]
pub struct DerWriter {
    buf: Vec<u8>,
}

impl DerWriter {
    /// Create an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Encode an unsigned 64-bit `INTEGER`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.int(v as i128)
    }

    /// Encode a signed 64-bit `INTEGER`.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.int(v as i128)
    }

    fn int(&mut self, v: i128) -> &mut Self {
        let body = int_bytes(v);
        self.buf.push(TAG_INTEGER);
        write_len(&mut self.buf, body.len());
        self.buf.extend_from_slice(&body);
        self
    }

    /// Encode a `BOOLEAN` (DER: `0xFF` for true, `0x00` for false).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.buf.push(TAG_BOOLEAN);
        self.buf.push(1);
        self.buf.push(if v { 0xFF } else { 0x00 });
        self
    }

    /// Encode an `OCTET STRING`.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.buf.push(TAG_OCTET_STRING);
        write_len(&mut self.buf, b.len());
        self.buf.extend_from_slice(b);
        self
    }

    /// Encode a `UTF8String`.
    pub fn utf8(&mut self, s: &str) -> &mut Self {
        self.buf.push(TAG_UTF8_STRING);
        write_len(&mut self.buf, s.len());
        self.buf.extend_from_slice(s.as_bytes());
        self
    }

    /// Encode a constructed `SEQUENCE` whose contents are produced by
    /// `f` on a fresh writer.
    pub fn seq(&mut self, f: impl FnOnce(&mut DerWriter)) -> &mut Self {
        let mut inner = DerWriter::new();
        f(&mut inner);
        self.buf.push(TAG_SEQUENCE);
        write_len(&mut self.buf, inner.buf.len());
        self.buf.extend_from_slice(&inner.buf);
        self
    }

    /// Convenience: encode a slice of `u64`s as an `OCTET STRING` of
    /// little-endian words (bulk state such as tag arrays is far more
    /// compact this way than as one `INTEGER` per word).
    pub fn u64_array(&mut self, words: &[u64]) -> &mut Self {
        let mut body = Vec::with_capacity(words.len() * 8);
        for w in words {
            body.extend_from_slice(&w.to_le_bytes());
        }
        self.bytes(&body)
    }

    /// Number of bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the writer, returning the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Streaming DER decoder over a byte slice.
#[derive(Debug, Clone)]
pub struct DerReader<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> DerReader<'a> {
    /// Create a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        DerReader { data, pos: 0 }
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.data.len()
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn read_len(&mut self) -> Result<usize, CodecError> {
        let first = self.take(1)?[0];
        if first < 0x80 {
            return Ok(first as usize);
        }
        let n = (first & 0x7F) as usize;
        if n == 0 || n > 8 {
            return Err(CodecError::BadLength);
        }
        let bytes = self.take(n)?;
        if bytes[0] == 0 {
            return Err(CodecError::BadLength); // non-minimal
        }
        let mut len = 0usize;
        for &b in bytes {
            len = len.checked_shl(8).ok_or(CodecError::BadLength)? | b as usize;
        }
        if len < 0x80 {
            return Err(CodecError::BadLength); // should have used short form
        }
        Ok(len)
    }

    fn element(&mut self, expected: u8) -> Result<&'a [u8], CodecError> {
        let tag = self.take(1)?[0];
        if tag != expected {
            self.pos -= 1;
            return Err(CodecError::UnexpectedTag { found: tag, expected });
        }
        let len = self.read_len()?;
        self.take(len)
    }

    /// Decode an unsigned 64-bit `INTEGER`.
    ///
    /// # Errors
    ///
    /// [`CodecError::IntegerOverflow`] if the value is negative or does
    /// not fit `u64`; tag/length errors as usual.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let v = self.int()?;
        u64::try_from(v).map_err(|_| CodecError::IntegerOverflow)
    }

    /// Decode a signed 64-bit `INTEGER`.
    ///
    /// # Errors
    ///
    /// [`CodecError::IntegerOverflow`] if out of range for `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let v = self.int()?;
        i64::try_from(v).map_err(|_| CodecError::IntegerOverflow)
    }

    fn int(&mut self) -> Result<i128, CodecError> {
        let body = self.element(TAG_INTEGER)?;
        if body.is_empty() || body.len() > 16 {
            return Err(CodecError::BadLength);
        }
        let negative = body[0] & 0x80 != 0;
        let mut v: i128 = if negative { -1 } else { 0 };
        for &b in body {
            v = (v << 8) | b as i128;
        }
        Ok(v)
    }

    /// Decode a `BOOLEAN`.
    ///
    /// # Errors
    ///
    /// Standard tag/length errors; any nonzero content byte reads `true`.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        let body = self.element(TAG_BOOLEAN)?;
        if body.len() != 1 {
            return Err(CodecError::BadLength);
        }
        Ok(body[0] != 0)
    }

    /// Decode an `OCTET STRING`, borrowing from the input.
    ///
    /// # Errors
    ///
    /// Standard tag/length errors.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        self.element(TAG_OCTET_STRING)
    }

    /// Decode a `UTF8String`.
    ///
    /// # Errors
    ///
    /// [`CodecError::BadUtf8`] on invalid UTF-8.
    pub fn utf8(&mut self) -> Result<&'a str, CodecError> {
        let body = self.element(TAG_UTF8_STRING)?;
        std::str::from_utf8(body).map_err(|_| CodecError::BadUtf8)
    }

    /// Enter a `SEQUENCE`, returning a sub-reader over its contents.
    ///
    /// # Errors
    ///
    /// Standard tag/length errors.
    pub fn seq(&mut self) -> Result<DerReader<'a>, CodecError> {
        let body = self.element(TAG_SEQUENCE)?;
        Ok(DerReader::new(body))
    }

    /// Decode an `OCTET STRING` of little-endian `u64` words (the
    /// counterpart of [`DerWriter::u64_array`]).
    ///
    /// # Errors
    ///
    /// [`CodecError::BadLength`] when the payload is not a multiple of 8.
    pub fn u64_array(&mut self) -> Result<Vec<u64>, CodecError> {
        let body = self.bytes()?;
        if body.len() % 8 != 0 {
            return Err(CodecError::BadLength);
        }
        Ok(body
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u64(v: u64) {
        let mut w = DerWriter::new();
        w.u64(v);
        let data = w.finish();
        let mut r = DerReader::new(&data);
        assert_eq!(r.u64().unwrap(), v);
        assert!(r.is_empty());
    }

    #[test]
    fn integer_roundtrips() {
        for v in [0u64, 1, 127, 128, 255, 256, u32::MAX as u64, u64::MAX] {
            roundtrip_u64(v);
        }
        for v in [-1i64, i64::MIN, i64::MAX, -128, 128] {
            let mut w = DerWriter::new();
            w.i64(v);
            let data = w.finish();
            assert_eq!(DerReader::new(&data).i64().unwrap(), v);
        }
    }

    #[test]
    fn canonical_integer_encodings() {
        // DER: 127 encodes as 02 01 7F; 128 needs a leading zero.
        let mut w = DerWriter::new();
        w.u64(127);
        assert_eq!(w.clone().finish(), vec![0x02, 0x01, 0x7F]);
        let mut w = DerWriter::new();
        w.u64(128);
        assert_eq!(w.finish(), vec![0x02, 0x02, 0x00, 0x80]);
        let mut w = DerWriter::new();
        w.i64(-1);
        assert_eq!(w.finish(), vec![0x02, 0x01, 0xFF]);
    }

    #[test]
    fn long_form_length() {
        let payload = vec![0xABu8; 300];
        let mut w = DerWriter::new();
        w.bytes(&payload);
        let data = w.finish();
        assert_eq!(&data[..4], &[0x04, 0x82, 0x01, 0x2C]); // 300 = 0x012C
        assert_eq!(DerReader::new(&data).bytes().unwrap(), &payload[..]);
    }

    #[test]
    fn nested_sequences() {
        let mut w = DerWriter::new();
        w.seq(|w| {
            w.u64(7);
            w.seq(|w| {
                w.utf8("inner");
                w.bool(true);
            });
            w.bytes(b"tail");
        });
        let data = w.finish();
        let mut r = DerReader::new(&data);
        let mut s = r.seq().unwrap();
        assert_eq!(s.u64().unwrap(), 7);
        let mut inner = s.seq().unwrap();
        assert_eq!(inner.utf8().unwrap(), "inner");
        assert!(inner.bool().unwrap());
        assert!(inner.is_empty());
        assert_eq!(s.bytes().unwrap(), b"tail");
        assert!(s.is_empty() && r.is_empty());
    }

    #[test]
    fn u64_array_roundtrip() {
        let words = vec![0u64, 5, u64::MAX, 42];
        let mut w = DerWriter::new();
        w.u64_array(&words);
        let data = w.finish();
        assert_eq!(DerReader::new(&data).u64_array().unwrap(), words);
    }

    #[test]
    fn wrong_tag_reports_both() {
        let mut w = DerWriter::new();
        w.u64(5);
        let data = w.finish();
        let err = DerReader::new(&data).bytes().unwrap_err();
        assert_eq!(err, CodecError::UnexpectedTag { found: 0x02, expected: 0x04 });
    }

    #[test]
    fn truncated_input() {
        let mut w = DerWriter::new();
        w.bytes(&[1, 2, 3, 4]);
        let data = w.finish();
        let mut r = DerReader::new(&data[..data.len() - 1]);
        assert_eq!(r.bytes().unwrap_err(), CodecError::Truncated);
    }

    #[test]
    fn rejects_non_minimal_length() {
        // 0x81 0x05 is long-form for 5, which must use short form.
        let data = [0x04, 0x81, 0x05, 1, 2, 3, 4, 5];
        assert_eq!(DerReader::new(&data).bytes().unwrap_err(), CodecError::BadLength);
    }

    #[test]
    fn negative_into_u64_overflows() {
        let mut w = DerWriter::new();
        w.i64(-5);
        let data = w.finish();
        assert_eq!(DerReader::new(&data).u64().unwrap_err(), CodecError::IntegerOverflow);
    }
}
