//! LZSS compression — the in-tree stand-in for gzip.
//!
//! The paper compresses live-points with gzip and reports ~5:1 ratios on
//! warm microarchitectural state. No gzip binding is available offline,
//! so this module implements an LZ77-family compressor with:
//!
//! * a 64 KiB sliding window, 3-byte minimum / 258-byte maximum matches,
//! * hash-head/prev chain match finding (bounded chain depth),
//! * a token format of flag bytes (8 tokens each), literal bytes, and
//!   3-byte `(offset, length)` back-references.
//!
//! The format is self-contained: `decompress(compress(x)) == x` for all
//! byte strings (property-tested), and incompressible input expands by
//! at most 12.5% plus a constant.

use crate::error::CodecError;
use spectral_telemetry::{Counter, Histogram, Stopwatch};

static COMPRESS_CALLS: Counter = Counter::new("codec.lzss.compress_calls");
static COMPRESS_IN_BYTES: Counter = Counter::new("codec.lzss.compress_in_bytes");
static COMPRESS_OUT_BYTES: Counter = Counter::new("codec.lzss.compress_out_bytes");
static COMPRESS_NS: Counter = Counter::new("codec.lzss.compress_ns");
static DECOMPRESS_CALLS: Counter = Counter::new("codec.lzss.decompress_calls");
static DECOMPRESS_OUT_BYTES: Counter = Counter::new("codec.lzss.decompress_out_bytes");
static DECOMPRESS_NS: Counter = Counter::new("codec.lzss.decompress_ns");
// Compression ratio in percent (uncompressed*100/compressed), log2-bucketed:
// bucket [256,512) ⇒ between 2.56:1 and 5.12:1, the paper's gzip band.
static RATIO_PCT: Histogram = Histogram::new("codec.lzss.ratio_pct");

const WINDOW: usize = 1 << 16;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 255;
const HASH_BITS: u32 = 15;
const CHAIN_DEPTH: usize = 32;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as u32) | ((data[i + 1] as u32) << 8) | ((data[i + 2] as u32) << 16);
    (h.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

/// Reusable match-finder state for [`compress_with`]: the hash-head
/// table and the previous-position chain. Compressing allocates these
/// afresh on every call otherwise (a 32 K-entry table plus one `usize`
/// per input byte), which dominates steady-state allocation in
/// pipelined library creation. Keep one per worker and reuse it.
#[derive(Debug, Default)]
pub struct CompressScratch {
    head: Vec<usize>,
    prev: Vec<usize>,
    concat: Vec<u8>,
}

impl CompressScratch {
    /// Create empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, data_len: usize) {
        self.head.clear();
        self.head.resize(1 << HASH_BITS, usize::MAX);
        self.prev.clear();
        self.prev.resize(data_len.max(1), usize::MAX);
    }
}

/// Compress `data`.
///
/// The output begins with the uncompressed length as a little-endian
/// `u64`, so [`decompress`] can pre-allocate exactly.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(&mut CompressScratch::new(), data)
}

/// Compress `data`, reusing `scratch`'s match-finder buffers.
///
/// Output is byte-identical to [`compress`] — the scratch only recycles
/// allocations, never state (it is fully reset per call).
pub fn compress_with(scratch: &mut CompressScratch, data: &[u8]) -> Vec<u8> {
    let sw = Stopwatch::start();
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    scratch.reset(data.len());
    let (head, prev) = (&mut scratch.head, &mut scratch.prev);

    let mut i = 0;
    // Token accumulation: one flag byte per 8 tokens.
    let mut flag_pos = usize::MAX;
    let mut flag_bit = 8;

    macro_rules! begin_token {
        ($is_match:expr) => {
            if flag_bit == 8 {
                flag_pos = out.len();
                out.push(0);
                flag_bit = 0;
            }
            if $is_match {
                out[flag_pos] |= 1 << flag_bit;
            }
            flag_bit += 1;
        };
    }

    while i < data.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let mut depth = 0;
            while cand != usize::MAX && depth < CHAIN_DEPTH {
                if i - cand > WINDOW {
                    break;
                }
                // Extend match.
                let max = (data.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == max {
                        break;
                    }
                }
                cand = prev[cand];
                depth += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            begin_token!(true);
            let off = (best_off - 1) as u16;
            out.extend_from_slice(&off.to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Index the skipped positions so later matches can find them.
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= data.len() {
                let h = hash3(data, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            begin_token!(false);
            out.push(data[i]);
            i += 1;
        }
    }
    COMPRESS_CALLS.inc();
    COMPRESS_IN_BYTES.add(data.len() as u64);
    COMPRESS_OUT_BYTES.add(out.len() as u64);
    COMPRESS_NS.add(sw.ns());
    if !out.is_empty() {
        RATIO_PCT.record((data.len() as u64 * 100) / out.len() as u64);
    }
    out
}

/// Compress `data` against a shared dictionary: the match window is
/// primed with `dict` before any `data` byte is coded, so back-references
/// may reach into the dictionary. The output carries tokens for `data`
/// only (the `u64` length header is `data.len()`); decode it with
/// [`decompress_into_with_dict`] and the *same* dictionary bytes.
///
/// With an empty dictionary the output is byte-identical to
/// [`compress_with`].
pub fn compress_with_dict(scratch: &mut CompressScratch, dict: &[u8], data: &[u8]) -> Vec<u8> {
    if dict.is_empty() {
        return compress_with(scratch, data);
    }
    let sw = Stopwatch::start();
    // Conceptually compress `dict ++ data`, emitting tokens only for the
    // `data` suffix. Dictionary positions are indexed into the match
    // chains up front; the decoder seeds its output window with the same
    // dictionary bytes, so offsets resolve identically on both sides.
    let mut concat = std::mem::take(&mut scratch.concat);
    concat.clear();
    concat.reserve(dict.len() + data.len());
    concat.extend_from_slice(dict);
    concat.extend_from_slice(data);

    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());

    scratch.reset(concat.len());
    let (head, prev) = (&mut scratch.head, &mut scratch.prev);
    let dict_index_end = dict.len().min(concat.len().saturating_sub(MIN_MATCH - 1));
    for (j, chain) in prev.iter_mut().enumerate().take(dict_index_end) {
        let h = hash3(&concat, j);
        *chain = head[h];
        head[h] = j;
    }

    let mut i = dict.len();
    let mut flag_pos = usize::MAX;
    let mut flag_bit = 8;

    macro_rules! begin_token {
        ($is_match:expr) => {
            if flag_bit == 8 {
                flag_pos = out.len();
                out.push(0);
                flag_bit = 0;
            }
            if $is_match {
                out[flag_pos] |= 1 << flag_bit;
            }
            flag_bit += 1;
        };
    }

    while i < concat.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= concat.len() {
            let h = hash3(&concat, i);
            let mut cand = head[h];
            let mut depth = 0;
            while cand != usize::MAX && depth < CHAIN_DEPTH {
                if i - cand > WINDOW {
                    break;
                }
                let max = (concat.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max && concat[cand + l] == concat[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == max {
                        break;
                    }
                }
                cand = prev[cand];
                depth += 1;
            }
            prev[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            begin_token!(true);
            let off = (best_off - 1) as u16;
            out.extend_from_slice(&off.to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            let end = i + best_len;
            let mut j = i + 1;
            while j < end && j + MIN_MATCH <= concat.len() {
                let h = hash3(&concat, j);
                prev[j] = head[h];
                head[h] = j;
                j += 1;
            }
            i = end;
        } else {
            begin_token!(false);
            out.push(concat[i]);
            i += 1;
        }
    }
    scratch.concat = concat;
    COMPRESS_CALLS.inc();
    COMPRESS_IN_BYTES.add(data.len() as u64);
    COMPRESS_OUT_BYTES.add(out.len() as u64);
    COMPRESS_NS.add(sw.ns());
    if !out.is_empty() {
        RATIO_PCT.record((data.len() as u64 * 100) / out.len() as u64);
    }
    out
}

/// Decompress data produced by [`compress`].
///
/// # Errors
///
/// Returns [`CodecError::Truncated`] on short input,
/// [`CodecError::BadBackReference`] when a match points before the
/// output start, and [`CodecError::BadLength`] when the stream does not
/// reproduce exactly the declared length.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    decompress_into(data, &mut out)?;
    Ok(out)
}

/// Decompress data produced by [`compress`] into a caller-provided
/// buffer, reusing its allocation — the zero-steady-state-allocation
/// variant of [`decompress`]. `out` is cleared first; on error its
/// contents are unspecified (but valid).
///
/// # Errors
///
/// Same conditions as [`decompress`].
pub fn decompress_into(data: &[u8], out: &mut Vec<u8>) -> Result<(), CodecError> {
    let sw = Stopwatch::start();
    out.clear();
    decode_tokens(data, out, 0)?;
    DECOMPRESS_CALLS.inc();
    DECOMPRESS_OUT_BYTES.add(out.len() as u64);
    DECOMPRESS_NS.add(sw.ns());
    Ok(())
}

/// Decompress data produced by [`compress_with_dict`] with the same
/// dictionary. `out` is cleared first and receives the decoded payload
/// only (never the dictionary); on error its contents are unspecified
/// (but valid).
///
/// # Errors
///
/// Same conditions as [`decompress`]; a stream whose back-references
/// assume a longer dictionary than supplied fails with
/// [`CodecError::BadBackReference`].
pub fn decompress_into_with_dict(
    dict: &[u8],
    data: &[u8],
    out: &mut Vec<u8>,
) -> Result<(), CodecError> {
    if dict.is_empty() {
        return decompress_into(data, out);
    }
    let sw = Stopwatch::start();
    out.clear();
    out.extend_from_slice(dict);
    decode_tokens(data, out, dict.len())?;
    out.drain(..dict.len());
    DECOMPRESS_CALLS.inc();
    DECOMPRESS_OUT_BYTES.add(out.len() as u64);
    DECOMPRESS_NS.add(sw.ns());
    Ok(())
}

/// Shared token decoder: `out` arrives pre-seeded with `base` window
/// bytes (the dictionary; 0 for plain streams) and is extended with
/// exactly the declared payload length.
fn decode_tokens(data: &[u8], out: &mut Vec<u8>, base: usize) -> Result<(), CodecError> {
    if data.len() < 8 {
        return Err(CodecError::Truncated);
    }
    let expect = u64::from_le_bytes(data[..8].try_into().expect("8 bytes")) as usize;
    // A valid stream cannot expand beyond MAX_MATCH bytes per input byte;
    // reject absurd headers before allocating (untrusted input safety).
    if expect > (data.len() - 8).saturating_mul(MAX_MATCH) {
        return Err(CodecError::BadLength);
    }
    let target = base + expect;
    out.reserve(expect);
    let mut i = 8;
    while out.len() < target {
        if i >= data.len() {
            return Err(CodecError::Truncated);
        }
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if out.len() >= target {
                break;
            }
            if flags & (1 << bit) != 0 {
                if i + 3 > data.len() {
                    return Err(CodecError::Truncated);
                }
                let off = u16::from_le_bytes([data[i], data[i + 1]]) as usize + 1;
                let len = data[i + 2] as usize + MIN_MATCH;
                i += 3;
                if off > out.len() {
                    return Err(CodecError::BadBackReference);
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                if i >= data.len() {
                    return Err(CodecError::Truncated);
                }
                out.push(data[i]);
                i += 1;
            }
        }
    }
    if out.len() != target {
        return Err(CodecError::BadLength);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) -> usize {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
        c.len()
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"ab");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data: Vec<u8> = b"warm cache state ".iter().copied().cycle().take(500 * 17).collect();
        let clen = roundtrip(&data);
        assert!(
            clen * 4 < data.len(),
            "expected >4:1 on repetitive input, got {clen}/{}",
            data.len()
        );
    }

    #[test]
    fn run_of_zeros() {
        let data = vec![0u8; 100_000];
        let clen = roundtrip(&data);
        assert!(clen < 2000, "runs should collapse, got {clen}");
    }

    #[test]
    fn incompressible_bounded_expansion() {
        // Pseudo-random bytes.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let clen = roundtrip(&data);
        assert!(clen <= data.len() + data.len() / 8 + 16);
    }

    #[test]
    fn overlapping_match_rle_semantics() {
        // 'aaaa...' forces overlapping copies (off=1, len>1).
        let data = vec![b'a'; 1000];
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let c = compress(b"hello world hello world hello world");
        assert!(matches!(decompress(&c[..c.len() - 2]), Err(CodecError::Truncated)));
        assert!(matches!(decompress(&[1, 2, 3]), Err(CodecError::Truncated)));
    }

    #[test]
    fn bad_backreference_detected() {
        // Declared len 4; first token is a match with offset 1 at output
        // position 0 → invalid.
        let mut stream = (4u64).to_le_bytes().to_vec();
        stream.push(0b0000_0001); // first token is a match
        stream.extend_from_slice(&0u16.to_le_bytes()); // offset-1 = 0 → off 1
        stream.push(1); // len 4
        assert!(matches!(decompress(&stream), Err(CodecError::BadBackReference)));
    }

    #[test]
    fn dict_roundtrip_and_ratio() {
        // Records of a live-point library share structure: bytes that are
        // incompressible on their own collapse almost entirely when a
        // sibling record primes the window.
        let mut x = 0xC0FFEE11u64;
        let data: Vec<u8> = (0..3000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let dict = data.clone();
        let mut scratch = CompressScratch::new();
        let plain = compress_with(&mut scratch, &data);
        let primed = compress_with_dict(&mut scratch, &dict, &data);
        assert!(
            primed.len() * 4 < plain.len(),
            "dictionary-identical input should collapse: {} vs plain {}",
            primed.len(),
            plain.len()
        );
        let mut out = Vec::new();
        decompress_into_with_dict(&dict, &primed, &mut out).unwrap();
        assert_eq!(out, data);
        // The primed stream is not decodable without its dictionary.
        assert!(decompress(&primed).is_err() || decompress(&primed).unwrap() != data);
    }

    #[test]
    fn empty_dict_is_byte_identical_to_plain() {
        let data = b"hello world hello world hello world".to_vec();
        let mut scratch = CompressScratch::new();
        let plain = compress_with(&mut scratch, &data);
        let primed = compress_with_dict(&mut scratch, &[], &data);
        assert_eq!(plain, primed);
        let mut out = Vec::new();
        decompress_into_with_dict(&[], &plain, &mut out).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn dict_roundtrip_edge_cases() {
        let mut scratch = CompressScratch::new();
        let mut out = Vec::new();
        for dict in [&b""[..], b"ab", b"abcabcabc"] {
            for data in [&b""[..], b"a", b"abcabcabcabcabc", b"zzzzzzzzzzzzzzzz"] {
                let c = compress_with_dict(&mut scratch, dict, data);
                decompress_into_with_dict(dict, &c, &mut out).unwrap();
                assert_eq!(out, data, "dict={dict:?} data={data:?}");
            }
        }
    }

    #[test]
    fn dict_stream_with_wrong_dict_is_rejected_or_wrong() {
        // A stream whose back-references reach into the dictionary must
        // fail typed (or decode to different bytes) under a shorter
        // dictionary — never panic.
        let mut x = 0xDEAD_BEEFu64;
        let dict: Vec<u8> = (0..2048)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let data: Vec<u8> = dict.iter().copied().take(1500).collect();
        let mut scratch = CompressScratch::new();
        let c = compress_with_dict(&mut scratch, &dict, &data);
        let mut out = Vec::new();
        match decompress_into_with_dict(&dict[..4], &c, &mut out) {
            Ok(()) => assert_ne!(out, data),
            Err(e) => assert!(matches!(
                e,
                CodecError::BadBackReference | CodecError::Truncated | CodecError::BadLength
            )),
        }
    }

    #[test]
    fn structured_state_compresses() {
        // Synthetic "tag array": mostly-sequential block numbers as raw
        // LE words. LZSS alone (no entropy stage) lands ~2:1 here; the
        // live-point encoder reaches the paper's gzip band by
        // delta+varint pre-coding before compression (tested in
        // spectral-core).
        let mut data = Vec::new();
        for set in 0..2048u64 {
            for way in 0..4u64 {
                data.extend_from_slice(&(set * 64 + way * 3).to_le_bytes());
            }
        }
        let clen = roundtrip(&data);
        assert!(
            clen * 3 < data.len() * 2,
            "tag-array-like state should compress >1.5:1, got {}:{}",
            data.len(),
            clen
        );
    }
}
